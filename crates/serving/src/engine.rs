//! The batched serving engine.
//!
//! A [`ServingEngine`] wraps one calibrated
//! [`QueryEngine`] plus an **epoch-versioned,
//! hot-swappable** [`Materialization`] and
//! answers *batches* of typed [`ServeRequest`]s — targets plus pinned
//! evidence, the one request shape every serving surface accepts:
//!
//! 1. duplicate requests inside a batch are coalesced and computed once
//!    (workloads sample pools with replacement, so real batches repeat);
//!    the coalescing key is the whole request, so the same targets under
//!    different evidence are — correctly — different computations;
//! 2. the unique queries are claimed work-stealing-style by `workers`
//!    **persistent** pool threads ([`WorkerPool`]), parked between batches
//!    — or by scoped per-batch threads under [`SpawnMode::Scoped`], the
//!    spawn-latency baseline;
//! 3. every worker owns a [`Scratch`], so all intermediate tables of a
//!    query are recycled into the next one — and with the persistent pool
//!    the scratches survive across batches too.
//!
//! Answers come back in batch order as [`Served`] handles around
//! `Arc<Answer>` — the warm path (cross-batch cache hits, in-batch
//! duplicates) never copies a table.
//!
//! # Epochs
//!
//! The materialization is not fixed at construction: [`publish`]
//! (`ServingEngine::publish`) atomically swaps in a new one, stamped with
//! the next epoch, while batches keep draining. Every answer and every
//! answer-cache entry is tagged with the epoch that produced it; a lookup
//! whose entry carries an older epoch is treated as a miss and the entry is
//! dropped *lazily* — no global cache flush, no serving pause. Each epoch
//! also carries a fresh [`WorkloadStats`] accumulator which the per-worker
//! [`OnlineEngine`]s feed (fresh computations) and the batch fan-out tops
//! up (duplicate and cached arrivals), so the lifecycle layer can watch the
//! epoch's *observed* benefit decay under workload drift.
//!
//! [`publish`]: ServingEngine::publish

use crate::overload::ServeOutcome;
use crate::pool::{PoolCell, PoolStats, SpawnMode, WorkerPool};
use crate::session::SessionCounters;
use peanut_core::exec::Executor;
use peanut_core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use peanut_core::sync::{thread, Arc, Mutex, OnceLock, RwLock};
use peanut_core::{
    FlatMaterialization, Materialization, OnlineEngine, ServeRequest, WorkloadStats,
};
use peanut_junction::cost::QueryCost;
use peanut_junction::QueryEngine;
use peanut_pgm::{PgmError, Potential, Scope, Scratch, Size, Var};
use peanut_store::StoreConfig;
use std::collections::{HashMap, VecDeque};
use std::ops::Deref;
use std::panic::resume_unwind;
use std::time::{Duration, Instant};

/// One query in the pre-[`ServeRequest`] enum form. The serving surfaces
/// now take [`ServeRequest`] directly; this enum remains as a builder
/// convenience and converts losslessly via `From<Query> for ServeRequest`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Query {
    /// `P(scope)`.
    Marginal(Scope),
    /// `P(targets | evidence)` (§3.1 joint→conditional reduction).
    Conditional {
        /// Target variables.
        targets: Scope,
        /// Evidence assignments (disjoint from the targets). Keep this
        /// sorted by variable — dedup and the answer cache compare queries
        /// structurally, so construct via [`Query::conditioned`] unless the
        /// list is already canonical.
        evidence: Vec<(Var, u32)>,
    },
}

impl Query {
    /// Builds a query from a target scope and an evidence list (empty
    /// evidence ⇒ marginal). Evidence is canonicalized (sorted by
    /// variable) so order-insensitive duplicates coalesce and hit the
    /// cache.
    pub fn conditioned(targets: Scope, mut evidence: Vec<(Var, u32)>) -> Self {
        if evidence.is_empty() {
            Query::Marginal(targets)
        } else {
            evidence.sort_unstable();
            Query::Conditional { targets, evidence }
        }
    }

    /// The scope the workload model reasons about: the query scope itself
    /// for marginals, the joint targets∪evidence scope for conditionals
    /// (that is the scope the engine answers, and the one materialization
    /// selection optimizes for).
    pub fn stat_scope(&self) -> Scope {
        match self {
            Query::Marginal(s) => s.clone(),
            Query::Conditional { targets, evidence } => {
                let ev = Scope::from_iter(evidence.iter().map(|&(v, _)| v));
                targets.union(&ev)
            }
        }
    }
}

impl From<Query> for ServeRequest {
    fn from(q: Query) -> Self {
        match q {
            Query::Marginal(s) => ServeRequest::marginal(s),
            Query::Conditional { targets, evidence } => ServeRequest::new(targets, evidence),
        }
    }
}

/// A served answer: the distribution plus execution telemetry. Shared
/// behind `Arc` between in-batch duplicates, the answer cache, and repeat
/// arrivals in later batches — it is immutable once computed.
#[derive(Clone, Debug)]
pub struct Answer {
    /// `P(scope)` or `P(targets | evidence)`.
    pub potential: Potential,
    /// Operation-count telemetry of the (possibly shared) computation.
    pub cost: QueryCost,
    /// Operation count the plain (shortcut-free) junction tree would have
    /// charged for the same query — the baseline the epoch's observed
    /// benefit is measured against.
    pub baseline_ops: Size,
    /// Materialization epoch this answer was computed under. Cache entries
    /// from older epochs are lazily invalidated after a swap.
    pub epoch: u64,
    /// Time spent computing this answer when it was first computed —
    /// shared by every arrival that reuses the computation.
    pub service_time: Duration,
}

/// One arrival's view of an answer: a zero-copy handle plus per-arrival
/// provenance. Dereferences to [`Answer`].
#[derive(Clone, Debug)]
pub struct Served {
    /// The shared answer.
    pub answer: Arc<Answer>,
    /// True when the answer came from the cross-batch answer cache (the
    /// arrival did no computation at all).
    pub from_cache: bool,
}

impl Served {
    /// Per-arrival latency: zero for cache hits, the shared computation
    /// time otherwise (in-batch duplicates wait on one computation).
    pub fn latency(&self) -> Duration {
        if self.from_cache {
            Duration::ZERO
        } else {
            self.answer.service_time
        }
    }
}

impl Deref for Served {
    type Target = Answer;

    fn deref(&self) -> &Answer {
        &self.answer
    }
}

/// Per-batch aggregate telemetry.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Queries submitted.
    pub queries: usize,
    /// Unique queries after in-batch coalescing.
    pub unique: usize,
    /// Unique queries served from the cross-batch answer cache.
    pub cache_hits: usize,
    /// Cache entries found stale (older epoch) and lazily dropped.
    pub stale_hits: usize,
    /// Materialization epoch the batch was served under.
    pub epoch: u64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Summed operation count over freshly computed queries.
    pub total_ops: u64,
    /// Summed shortcut uses over freshly computed queries.
    pub shortcuts_used: usize,
}

/// Serving knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServingConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Coalesce duplicate queries within a batch (on by default).
    pub dedup: bool,
    /// Capacity of the cross-batch answer cache (FIFO eviction); `0`
    /// disables caching. Workloads in the paper's model (Def. 3.3) are
    /// distributions over a finite query pool, so repeated queries dominate
    /// steady-state traffic.
    pub cache_capacity: usize,
    /// How batches fan out: a persistent parked [`WorkerPool`] (default)
    /// or scoped threads spawned per batch (the spawn-latency baseline).
    pub spawn: SpawnMode,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            workers: 0,
            dedup: true,
            cache_capacity: 4096,
            spawn: SpawnMode::Persistent,
        }
    }
}

impl ServingConfig {
    /// Sets the worker-thread count (chainable). `0` means one per core.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables in-batch coalescing (chainable).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Sets the answer-cache capacity (chainable). `0` disables caching.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the fan-out mode (chainable).
    pub fn with_spawn(mut self, spawn: SpawnMode) -> Self {
        self.spawn = spawn;
        self
    }
}

/// Bounded FIFO map of fully computed answers. Entries are tagged with the
/// epoch of the answer they hold; lookups under a newer epoch drop the
/// entry lazily instead of flushing the cache on swap. The eviction queue
/// carries the insert-time epoch so a dangling queue entry (whose map slot
/// was dropped or replaced by a newer epoch) is skipped, never evicting a
/// fresher entry by key collision.
#[derive(Default)]
pub(crate) struct AnswerCache {
    map: HashMap<ServeRequest, Arc<Answer>>,
    order: VecDeque<(ServeRequest, u64)>,
}

pub(crate) enum CacheLookup {
    Hit(Arc<Answer>),
    StaleDropped,
    Miss,
}

impl AnswerCache {
    pub(crate) fn lookup(&mut self, q: &ServeRequest, epoch: u64) -> CacheLookup {
        match self.map.get(q) {
            Some(hit) if hit.epoch == epoch => CacheLookup::Hit(Arc::clone(hit)),
            Some(hit) if hit.epoch < epoch => {
                // stale epoch: lazy invalidation (its order entry dangles
                // and is skipped at eviction time by the epoch check)
                self.map.remove(q);
                CacheLookup::StaleDropped
            }
            // a *newer* epoch than this batch's snapshot (the batch raced
            // a publish): miss for us, but the entry is current for every
            // following batch — it must not be evicted
            Some(_) => CacheLookup::Miss,
            None => CacheLookup::Miss,
        }
    }

    /// Pops the oldest queue entry, evicting its map entry unless the
    /// queue entry dangles (the slot was stale-dropped or re-inserted at
    /// a newer epoch). Returns false when the queue is empty.
    fn evict_front(&mut self) -> bool {
        let Some((old, ep)) = self.order.pop_front() else {
            return false;
        };
        if self.map.get(&old).is_some_and(|e| e.epoch == ep) {
            self.map.remove(&old);
        }
        true
    }

    pub(crate) fn insert(&mut self, capacity: usize, q: ServeRequest, a: Arc<Answer>) {
        if capacity == 0 {
            return;
        }
        if let Some(existing) = self.map.get(&q) {
            if existing.epoch >= a.epoch {
                return;
            }
        }
        while self.map.len() >= capacity && self.evict_front() {}
        // The queue accumulates dangling entries (stale drops, same-key
        // re-inserts at a newer epoch) that the loop above only drains
        // once the map saturates — which a small working set under
        // repeated epoch swaps never does. Bound the queue itself: past
        // 2× capacity at least half of it is dangling, so popping from
        // the front (evicting the odd live entry early, FIFO-fairly) is
        // cheap and keeps memory proportional to capacity, not uptime.
        while self.order.len() >= capacity.saturating_mul(2).max(8) && self.evict_front() {}
        self.order.push_back((q.clone(), a.epoch));
        self.map.insert(q, a);
    }
}

/// One epoch's swappable state: the materialization and the accumulator
/// observing traffic served under it. Replaced as a unit by
/// [`ServingEngine::publish`].
struct EpochState {
    mat: Arc<Materialization>,
    stats: Arc<WorkloadStats>,
    /// All dense shortcut tables of `mat` packed into one contiguous slab,
    /// taken at publish time. This is the relocatable artifact the future
    /// mmap materialization store persists per epoch.
    flat: Arc<FlatMaterialization>,
}

/// Write-behind persistence hook of one serving engine: where epochs go
/// on [`publish`](ServingEngine::publish) and explicit
/// [`persist_current`](ServingEngine::persist_current) calls.
struct EngineStore {
    cfg: StoreConfig,
    tenant: u32,
    /// High-water mark of persisted epochs, stored as `epoch + 1` so `0`
    /// means "nothing persisted yet".
    persisted: AtomicU64,
    /// Publishes whose best-effort persist failed (telemetry; the epoch
    /// keeps serving from RAM).
    errors: AtomicUsize,
}

/// Batched concurrent query processor over a calibrated tree and a
/// hot-swappable, epoch-versioned materialization.
///
/// ```
/// use peanut_core::Materialization;
/// use peanut_junction::{build_junction_tree, QueryEngine};
/// use peanut_pgm::{fixtures, Scope};
/// use peanut_serving::{ServeRequest, ServingConfig, ServingEngine};
///
/// let bn = fixtures::sprinkler();
/// let tree = build_junction_tree(&bn).unwrap();
/// let engine = QueryEngine::numeric(&tree, &bn).unwrap();
/// let serving = ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
///
/// let batch = [ServeRequest::marginal(Scope::from_indices(&[0]))];
/// let (outcomes, stats) = serving.serve_batch(&batch);
/// assert!(outcomes[0].is_served());
/// assert_eq!(stats.unique, 1);
/// ```
pub struct ServingEngine<'t> {
    engine: Arc<QueryEngine<'t>>,
    state: RwLock<EpochState>,
    cfg: ServingConfig,
    cache: Mutex<AnswerCache>,
    /// Persistent workers, spawned lazily on the first batch that fans
    /// out (or injected via [`with_pool`](Self::with_pool)). Engines that
    /// only ever serve sequentially never spawn a thread.
    pool: PoolCell,
    /// Optional epoch persistence ([`set_store`](Self::set_store)).
    store: Option<EngineStore>,
    /// Evidence-session registry counters (open/active/backlog), shared
    /// with the [`crate::session`] module.
    pub(crate) sessions: SessionCounters,
}

impl<'t> ServingEngine<'t> {
    /// Takes ownership of a (calibrated) query engine and an initial
    /// materialization (served as whatever epoch it is stamped with,
    /// 0 for a freshly selected one).
    pub fn new(engine: QueryEngine<'t>, mat: Materialization, cfg: ServingConfig) -> Self {
        Self::from_shared(Arc::new(engine), Arc::new(mat), cfg)
    }

    /// Shares an already-`Arc`ed engine and materialization.
    pub fn from_shared(
        engine: Arc<QueryEngine<'t>>,
        mat: Arc<Materialization>,
        cfg: ServingConfig,
    ) -> Self {
        let flat = Arc::new(FlatMaterialization::pack(&mat));
        ServingEngine {
            engine,
            state: RwLock::new(EpochState {
                mat,
                stats: Arc::new(WorkloadStats::new()),
                flat,
            }),
            cfg,
            cache: Mutex::new(AnswerCache::default()),
            pool: PoolCell::new(),
            store: None,
            sessions: SessionCounters::default(),
        }
    }

    /// Attaches epoch persistence: every [`publish`](Self::publish) (and
    /// explicit [`persist_current`](Self::persist_current) call) writes
    /// the epoch's store file for `tenant` under `cfg.dir`. Persistence
    /// on publish is write-behind and best-effort — a failed write bumps
    /// [`persist_errors`](Self::persist_errors) and the epoch keeps
    /// serving from RAM.
    pub fn set_store(&mut self, cfg: StoreConfig, tenant: u32) {
        self.store = Some(EngineStore {
            cfg,
            tenant,
            persisted: AtomicU64::new(0),
            errors: AtomicUsize::new(0),
        });
    }

    /// Whether a store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// The newest epoch known to be persisted, `None` when no epoch has
    /// been written (or no store is attached).
    pub fn persisted_epoch(&self) -> Option<u64> {
        // ordering: advisory high-water mark; the store file itself was
        // durably renamed into place before this was bumped.
        self.store
            .as_ref()
            .and_then(|s| s.persisted.load(Ordering::Acquire).checked_sub(1))
    }

    /// Publishes whose write-behind persist failed.
    pub fn persist_errors(&self) -> usize {
        // ordering: telemetry counter, advisory read.
        self.store
            .as_ref()
            .map_or(0, |s| s.errors.load(Ordering::Relaxed))
    }

    /// Marks `epoch` as already persisted — the rehydration path uses
    /// this so a freshly faulted-in tenant is not re-written on its next
    /// page-out.
    pub(crate) fn mark_persisted(&self, epoch: u64) {
        if let Some(s) = &self.store {
            // ordering: Release pairs with the Acquire in persisted_epoch;
            // the file this records already exists on disk.
            s.persisted.store(epoch + 1, Ordering::Release);
        }
    }

    /// Persists the currently served epoch to the attached store,
    /// returning the epoch written. Errors are typed ([`PgmError`]) and
    /// also counted in [`persist_errors`](Self::persist_errors).
    pub fn persist_current(&self) -> Result<u64, PgmError> {
        let Some(store) = &self.store else {
            return Err(PgmError::StoreIo {
                path: "<unconfigured>".into(),
                msg: "engine has no store attached".into(),
            });
        };
        let (mat, flat) = {
            let state = self.state.read();
            (Arc::clone(&state.mat), Arc::clone(&state.flat))
        };
        let Some(ns) = self.engine.numeric_state() else {
            // ordering: telemetry counter only.
            store.errors.fetch_add(1, Ordering::Relaxed);
            return Err(PgmError::StoreIo {
                path: store
                    .cfg
                    .epoch_path(store.tenant, mat.epoch)
                    .display()
                    .to_string(),
                msg: "symbolic engine has no calibrated slab to persist".into(),
            });
        };
        match store
            .cfg
            .save_epoch(store.tenant, &mat, &flat, ns.arena().slab())
        {
            Ok(_) => {
                // ordering: Release pairs with the Acquire in
                // persisted_epoch — the rename above happens-before any
                // reader that observes the new mark.
                store.persisted.store(mat.epoch + 1, Ordering::Release);
                Ok(mat.epoch)
            }
            Err(e) => {
                // ordering: telemetry counter only.
                store.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Like [`new`](Self::new), but serving on an externally owned
    /// [`WorkerPool`] instead of spawning a private one — several engines
    /// can park on the same workers.
    pub fn with_pool(
        engine: QueryEngine<'t>,
        mat: Materialization,
        cfg: ServingConfig,
        pool: Arc<WorkerPool>,
    ) -> Self {
        let serving = Self::new(engine, mat, cfg);
        assert!(serving.pool.set(pool).is_ok(), "fresh engine has no pool");
        serving
    }

    /// The engine's persistent worker pool, spawning it on first use
    /// (sized by [`workers`](Self::workers)).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.pool.get_or_spawn(self.workers())
    }

    /// Pool telemetry, if the pool has been spawned (an engine that has
    /// only served sequentially has none).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.stats()
    }

    /// Pre-spawns the worker pool so the first fanned-out batch does not
    /// pay thread-spawn latency in-band. A no-op for engines that would
    /// never fan out (one worker, or scoped spawning).
    pub fn warm_pool(&self) {
        self.pool.warm(self.cfg.spawn, self.workers());
    }

    /// Executor for off-path offline work (lifecycle re-selection): the
    /// persistent pool's re-materialization lane when this engine fans
    /// out — serving-lane waves preempt it between tasks, so a
    /// re-selection can never head-of-line block query traffic — a scoped
    /// `threads`-wide fan-out otherwise (sequential when 1).
    pub(crate) fn offline_exec(&self, threads: usize) -> Box<dyn Executor + '_> {
        self.pool
            .offline_exec(self.cfg.spawn, self.workers(), threads)
    }

    /// The wrapped query engine.
    pub fn engine(&self) -> &QueryEngine<'t> {
        &self.engine
    }

    /// Snapshot of the currently served materialization.
    pub fn materialization(&self) -> Arc<Materialization> {
        Arc::clone(&self.state.read().mat)
    }

    /// The epoch currently being served.
    pub fn epoch(&self) -> u64 {
        self.state.read().mat.epoch
    }

    /// The current epoch's observation accumulator (per-scope arrivals,
    /// shortcut hit rates, observed vs baseline cost). Reset on every
    /// [`publish`](Self::publish).
    pub fn stats(&self) -> Arc<WorkloadStats> {
        Arc::clone(&self.state.read().stats)
    }

    /// Atomically publishes a new materialization as the next epoch and
    /// returns that epoch. Serving never pauses: in-flight batches finish
    /// on the snapshot they took, their answers enter the cache tagged with
    /// the old epoch, and later lookups drop those entries lazily. The
    /// observation accumulator starts fresh for the new epoch.
    pub fn publish(&self, mat: Materialization) -> u64 {
        let epoch = {
            let mut state = self.state.write();
            let epoch = state.mat.epoch + 1;
            let mat = Arc::new(mat.with_epoch(epoch));
            let flat = Arc::new(FlatMaterialization::pack(&mat));
            *state = EpochState {
                mat,
                stats: Arc::new(WorkloadStats::new()),
                flat,
            };
            epoch
        };
        if self.store.is_some() {
            // write-behind: failures are counted (persist_errors) and the
            // epoch serves from RAM regardless
            let _ = self.persist_current();
        }
        epoch
    }

    /// The current epoch's flat pack: every dense shortcut table in one
    /// relocatable slab, stamped with the served epoch. Published
    /// atomically with the materialization itself.
    pub fn flat_materialization(&self) -> Arc<FlatMaterialization> {
        Arc::clone(&self.state.read().flat)
    }

    /// Starts a fresh observation window for the current epoch without
    /// changing the materialization, returning the retired accumulator.
    /// The lifecycle controller rolls the window after every decision so
    /// drift detection always looks at *recent* traffic instead of a
    /// forever-cumulative average that dilutes a distribution change.
    /// (Batches already in flight keep recording into the retired window;
    /// the next window only misses those stragglers.)
    pub fn reset_stats(&self) -> Arc<WorkloadStats> {
        let mut state = self.state.write();
        std::mem::replace(&mut state.stats, Arc::new(WorkloadStats::new()))
    }

    /// Epoch snapshot for a batch: the served materialization and its
    /// observation accumulator, taken atomically. The sharded engine takes
    /// per-shard snapshots up front so a whole mixed batch is served under
    /// one epoch per tenant.
    pub(crate) fn epoch_snapshot(&self) -> (Arc<Materialization>, Arc<WorkloadStats>) {
        let state = self.state.read();
        (Arc::clone(&state.mat), Arc::clone(&state.stats))
    }

    /// Runs `f` under this engine's answer-cache lock (one lock scope per
    /// shard per mixed batch). Only Arc clones should happen inside.
    pub(crate) fn with_cache<R>(&self, f: impl FnOnce(&mut AnswerCache) -> R) -> R {
        f(&mut self.cache.lock())
    }

    /// The configured answer-cache capacity (`0` = caching disabled).
    pub(crate) fn cache_capacity(&self) -> usize {
        self.cfg.cache_capacity
    }

    /// The shared query engine, by Arc — what a mixed-batch worker borrows
    /// to build a per-shard [`OnlineEngine`].
    pub(crate) fn engine_arc(&self) -> &Arc<QueryEngine<'t>> {
        &self.engine
    }

    /// The configured fan-out mode (session serving mirrors the batch
    /// path's spawn choice).
    pub(crate) fn spawn_mode(&self) -> SpawnMode {
        self.cfg.spawn
    }

    /// The worker count a batch will actually use (before capping by batch
    /// size).
    pub fn workers(&self) -> usize {
        if self.cfg.workers > 0 {
            self.cfg.workers
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Answers a batch of [`ServeRequest`]s. Outcomes come back in
    /// submission order; duplicate requests share one computation (and its
    /// telemetry) when deduping is on. The whole batch is served under one
    /// epoch snapshot — a concurrent [`publish`](Self::publish) affects
    /// only later batches. This path never sheds, so every outcome is
    /// [`ServeOutcome::Served`] or [`ServeOutcome::Failed`].
    pub fn serve_batch(&self, batch: &[ServeRequest]) -> (Vec<ServeOutcome>, BatchStats) {
        let start = Instant::now();
        // epoch snapshot: the materialization and its stats accumulator
        let (mat, stats) = self.epoch_snapshot();
        let epoch = mat.epoch;
        let mut bstats = BatchStats {
            queries: batch.len(),
            epoch,
            ..BatchStats::default()
        };
        if batch.is_empty() {
            return (Vec::new(), bstats);
        }

        // coalesce duplicates: assign[i] = index into `uniques`
        let (uniques, assign): (Vec<&ServeRequest>, Vec<usize>) = if self.cfg.dedup {
            let mut first_of: HashMap<&ServeRequest, usize> = HashMap::with_capacity(batch.len());
            let mut uniques = Vec::new();
            let assign = batch
                .iter()
                .map(|q| {
                    *first_of.entry(q).or_insert_with(|| {
                        uniques.push(q);
                        uniques.len() - 1
                    })
                })
                .collect();
            (uniques, assign)
        } else {
            (batch.iter().collect(), (0..batch.len()).collect())
        };
        bstats.unique = uniques.len();

        let mut unique_results: Vec<Option<Result<Arc<Answer>, PgmError>>> = Vec::new();
        unique_results.resize_with(uniques.len(), || None);
        let mut from_cache = vec![false; uniques.len()];

        // cross-batch cache: serve current-epoch repeats from memory, drop
        // stale-epoch entries lazily, compute the rest. Only Arc clones
        // happen under the lock.
        let mut work: Vec<usize> = Vec::with_capacity(uniques.len());
        if self.cfg.cache_capacity > 0 {
            let mut cache = self.cache.lock();
            for (i, q) in uniques.iter().enumerate() {
                match cache.lookup(q, epoch) {
                    CacheLookup::Hit(hit) => {
                        unique_results[i] = Some(Ok(hit));
                        from_cache[i] = true;
                        bstats.cache_hits += 1;
                    }
                    CacheLookup::StaleDropped => {
                        bstats.stale_hits += 1;
                        work.push(i);
                    }
                    CacheLookup::Miss => work.push(i),
                }
            }
        } else {
            work.extend(0..uniques.len());
        }

        type WorkerOut = Vec<(usize, Result<Arc<Answer>, PgmError>)>;
        let n_workers = self.workers().min(work.len()).max(1);
        if work.len() <= 1 || n_workers == 1 {
            // in-thread fast path: no fan-out overhead for small batches
            let online = OnlineEngine::with_stats(&self.engine, &mat, &stats);
            let mut scratch = Scratch::new();
            for &i in &work {
                unique_results[i] =
                    Some(answer_one(&online, uniques[i], &mut scratch, epoch).map(Arc::new));
            }
        } else if self.cfg.spawn == SpawnMode::Persistent {
            // persistent pool, serving lane (the highest priority — a
            // queued re-materialization wave is preempted between tasks):
            // parked workers are woken for the wave; their scratches
            // persist across batches. run_wave re-raises a task panic
            // here after the wave drains, so a poisoned batch never
            // poisons the pool. Each task owns slot `w`, so results land
            // lock-free instead of contending on one mutex.
            let slots: Vec<OnceLock<Result<Arc<Answer>, PgmError>>> =
                (0..work.len()).map(|_| OnceLock::new()).collect();
            self.pool().run_wave(work.len(), &|w, scratch| {
                let i = work[w];
                let online = OnlineEngine::with_stats(&self.engine, &mat, &stats);
                let r = answer_one(&online, uniques[i], scratch, epoch).map(Arc::new);
                assert!(slots[w].set(r).is_ok(), "wave claims each index once");
            });
            for (w, slot) in slots.into_iter().enumerate() {
                // lint:allow(hot_panic) — protocol invariant: run_wave does
                // not return before every claimed index has completed, and
                // the model-check suite drives exactly that protocol.
                let r = slot.into_inner().expect("completed wave ran every task");
                unique_results[work[w]] = Some(r);
            }
        } else {
            // scoped baseline: spawn-per-batch threads (kept for the
            // spawn-amortization study and as a differential reference)
            let next = AtomicUsize::new(0);
            let worker_outs: Vec<WorkerOut> = thread::scope(|s| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|_| {
                        s.spawn(|| {
                            let online = OnlineEngine::with_stats(&self.engine, &mat, &stats);
                            let mut scratch = Scratch::new();
                            let mut out = Vec::new();
                            loop {
                                // ordering: work-claiming counter only; the
                                // scope join publishes the results.
                                let w = next.fetch_add(1, Ordering::Relaxed);
                                if w >= work.len() {
                                    break;
                                }
                                let i = work[w];
                                out.push((
                                    i,
                                    answer_one(&online, uniques[i], &mut scratch, epoch)
                                        .map(Arc::new),
                                ));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // a worker panic (task panics are not confined on the
                    // scoped baseline) re-raises on the submitting thread,
                    // matching the pool path's semantics
                    .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
                    .collect()
            });
            for (i, r) in worker_outs.into_iter().flatten() {
                unique_results[i] = Some(r);
            }
        }

        if self.cfg.cache_capacity > 0 && !work.is_empty() {
            // zero-copy admission: the cache shares the caller's Arc
            let fresh: Vec<(ServeRequest, Arc<Answer>)> = work
                .iter()
                .filter_map(|&i| match &unique_results[i] {
                    Some(Ok(a)) => Some(((*uniques[i]).clone(), Arc::clone(a))),
                    _ => None,
                })
                .collect();
            let mut cache = self.cache.lock();
            for (q, a) in fresh {
                cache.insert(self.cfg.cache_capacity, q, a);
            }
        }

        for &i in &work {
            if let Some(Ok(r)) = &unique_results[i] {
                bstats.total_ops = bstats.total_ops.saturating_add(r.cost.ops);
                bstats.shortcuts_used += r.cost.shortcuts_used;
            }
        }

        // arrival multiplicities, for the fan-out and the observed-workload
        // accounting (fresh computations recorded themselves once via the
        // per-worker OnlineEngine; duplicates and cache hits top up here so
        // the epoch's stats weigh arrivals, not computations)
        let mut uses: Vec<u64> = vec![0; uniques.len()];
        for &u in &assign {
            uses[u] += 1;
        }
        for (i, q) in uniques.iter().enumerate() {
            if let Some(Ok(a)) = &unique_results[i] {
                let extra = if from_cache[i] { uses[i] } else { uses[i] - 1 };
                if extra > 0 {
                    stats.record_n(&q.stat_scope(), &a.cost, a.baseline_ops, extra);
                }
                // evidence contexts weigh arrivals too — the per-worker
                // OnlineEngine records scopes but knows nothing about
                // evidence, so conditioned requests log theirs here
                if !q.is_marginal() {
                    stats.record_evidence(&q.evidence_scope(), uses[i]);
                }
            }
        }

        // fan back out: every arrival gets a zero-copy handle on the shared
        // answer (errors are cloned; they carry no tables)
        let answers = assign
            .into_iter()
            .map(
                // lint:allow(hot_panic) — invariant: every unique index is
                // either a cache hit or a member of `work`, both filled above.
                |u| match unique_results[u].as_ref().expect("all uniques computed") {
                    Ok(a) => ServeOutcome::Served(Served {
                        answer: Arc::clone(a),
                        from_cache: from_cache[u],
                    }),
                    Err(e) => ServeOutcome::Failed(e.clone()),
                },
            )
            .collect();
        bstats.wall = start.elapsed();
        (answers, bstats)
    }
}

pub(crate) fn answer_one(
    online: &OnlineEngine<'_, '_>,
    req: &ServeRequest,
    scratch: &mut Scratch,
    epoch: u64,
) -> Result<Answer, PgmError> {
    let t = Instant::now();
    let traced = if req.is_marginal() {
        online.answer_traced_in(&req.targets, scratch)?
    } else {
        online.conditional_traced_in(&req.targets, &req.evidence, scratch)?
    };
    Ok(Answer {
        potential: traced.potential,
        cost: traced.cost,
        baseline_ops: traced.baseline_ops,
        epoch,
        service_time: t.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, joint};

    fn queries(bn: &peanut_pgm::BayesianNetwork) -> Vec<ServeRequest> {
        let d = bn.domain();
        let n = d.len() as u32;
        let mut qs: Vec<ServeRequest> = (0..n)
            .flat_map(|a| {
                ((a + 1)..n.min(a + 3))
                    .map(move |b| ServeRequest::marginal(Scope::from_indices(&[a, b])))
            })
            .collect();
        qs.push(ServeRequest::new(
            Scope::from_indices(&[0]),
            vec![(Var(n - 1), 0)],
        ));
        // force duplicates
        let dup = qs[0].clone();
        qs.push(dup);
        qs
    }

    #[test]
    fn query_enum_converts_losslessly() {
        let m: ServeRequest = Query::Marginal(Scope::from_indices(&[2, 5])).into();
        assert_eq!(m, ServeRequest::marginal(Scope::from_indices(&[2, 5])));
        let c: ServeRequest =
            Query::conditioned(Scope::from_indices(&[1]), vec![(Var(3), 1)]).into();
        assert_eq!(
            c,
            ServeRequest::new(Scope::from_indices(&[1]), vec![(Var(3), 1)])
        );
        assert_eq!(c.stat_scope(), Scope::from_indices(&[1, 3]));
    }

    #[test]
    fn batch_answers_match_sequential_engine() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_workers(3),
        );
        let batch = queries(&bn);
        let (answers, stats) = serving.serve_batch(&batch);
        assert_eq!(answers.len(), batch.len());
        assert_eq!(stats.queries, batch.len());
        assert_eq!(stats.epoch, 0);
        assert!(stats.unique < batch.len(), "duplicate must coalesce");
        // the one conditioned request logged its evidence context
        let snap = serving.stats().snapshot();
        assert_eq!(snap.evidence_queries, 1);
        assert_eq!(serving.stats().evidence_scope_counts().len(), 1);
        for (q, o) in batch.iter().zip(&answers) {
            let a = o.served().expect("served");
            assert_eq!(a.epoch, 0);
            if q.is_marginal() {
                let want = joint::marginal(&bn, &q.targets).unwrap();
                assert!(a.potential.max_abs_diff(&want).unwrap() < 1e-9);
            } else {
                assert_eq!(a.potential.scope(), &q.targets);
                assert!((a.potential.sum() - 1.0).abs() < 1e-9);
            }
            assert!(a.cost.ops > 0);
            assert!(a.baseline_ops >= a.cost.ops);
        }
    }

    #[test]
    fn dedup_off_computes_every_query() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default()
                .with_workers(1)
                .with_dedup(false)
                .with_cache_capacity(0),
        );
        let q = ServeRequest::marginal(Scope::from_indices(&[0, 3]));
        let batch = vec![q.clone(), q.clone(), q];
        let (answers, stats) = serving.serve_batch(&batch);
        assert_eq!(stats.unique, 3);
        assert_eq!(answers.len(), 3);
    }

    #[test]
    fn errors_are_reported_per_query() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let batch = vec![
            ServeRequest::marginal(Scope::from_indices(&[0])),
            // overlapping targets/evidence is rejected per-query
            ServeRequest::new(Scope::from_indices(&[1]), vec![(Var(1), 0)]),
        ];
        let (answers, _) = serving.serve_batch(&batch);
        assert!(answers[0].is_served());
        assert!(answers[1].failure().is_some());
    }

    #[test]
    fn cache_serves_repeated_batches_zero_copy() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let batch = queries(&bn);
        let (first, s1) = serving.serve_batch(&batch);
        assert_eq!(s1.cache_hits, 0);
        let (second, s2) = serving.serve_batch(&batch);
        assert_eq!(s2.cache_hits, s2.unique, "second pass fully cached");
        assert_eq!(s2.total_ops, 0, "cache hits charge no fresh ops");
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.served().unwrap(), b.served().unwrap());
            // the warm path must share the first pass's table, not copy it
            assert!(
                Arc::ptr_eq(&a.answer, &b.answer),
                "cache hit must be zero-copy"
            );
            assert!(b.from_cache);
            assert_eq!(b.latency(), Duration::ZERO);
        }
    }

    #[test]
    fn cache_eviction_respects_capacity() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_cache_capacity(2),
        );
        let qs: Vec<ServeRequest> = (0..4u32)
            .map(|i| ServeRequest::marginal(Scope::from_indices(&[i])))
            .collect();
        serving.serve_batch(&qs);
        let cached = serving.cache.lock().map.len();
        assert!(cached <= 2, "capacity bound violated: {cached}");
    }

    #[test]
    fn older_snapshot_lookup_preserves_newer_entries() {
        // a batch that raced a publish still holds the old epoch; its
        // lookups must not evict entries the new epoch already cached
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let q = ServeRequest::marginal(Scope::from_indices(&[0, 2]));
        let (answers, _) = serving.serve_batch(std::slice::from_ref(&q));
        let mut newer = (*answers[0].served().unwrap().answer).clone();
        newer.epoch = 1;

        let mut cache = AnswerCache::default();
        cache.insert(4, q.clone(), Arc::new(newer));
        assert!(matches!(cache.lookup(&q, 0), CacheLookup::Miss));
        assert!(cache.map.contains_key(&q), "newer entry must survive");
        assert!(matches!(cache.lookup(&q, 1), CacheLookup::Hit(_)));
        assert!(matches!(cache.lookup(&q, 2), CacheLookup::StaleDropped));
        assert!(!cache.map.contains_key(&q), "older entry drops lazily");
    }

    #[test]
    fn cache_order_queue_stays_bounded_across_swaps() {
        // a working set far below capacity under repeated epoch swaps:
        // every swap strands the map entries, and without a queue bound
        // the dangling order entries would grow with uptime
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving = ServingEngine::new(
            engine,
            Materialization::default(),
            ServingConfig::default().with_cache_capacity(4),
        );
        let batch = vec![
            ServeRequest::marginal(Scope::from_indices(&[0, 2])),
            ServeRequest::marginal(Scope::from_indices(&[1, 3])),
        ];
        for _ in 0..20 {
            serving.serve_batch(&batch);
            serving.publish(Materialization::default());
        }
        serving.serve_batch(&batch);
        let order_len = serving.cache.lock().order.len();
        assert!(
            order_len <= 8,
            "eviction queue must stay bounded by capacity, got {order_len}"
        );
    }

    #[test]
    fn publish_bumps_epoch_and_invalidates_lazily() {
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let batch = queries(&bn);
        let (first, _) = serving.serve_batch(&batch);
        assert_eq!(serving.epoch(), 0);

        let epoch = serving.publish(Materialization::default());
        assert_eq!(epoch, 1);
        assert_eq!(serving.epoch(), 1);
        // entries from epoch 0 are still in the cache, but must not serve
        let (second, s2) = serving.serve_batch(&batch);
        assert_eq!(s2.cache_hits, 0, "pre-swap entries must not hit");
        assert_eq!(s2.stale_hits, s2.unique, "stale entries dropped lazily");
        for (a, b) in first.iter().zip(&second) {
            let (a, b) = (a.served().unwrap(), b.served().unwrap());
            assert_eq!(a.epoch, 0);
            assert_eq!(b.epoch, 1);
            assert!(!b.from_cache);
            assert_eq!(a.potential.values(), b.potential.values());
        }
        // third pass hits the re-populated epoch-1 entries
        let (_, s3) = serving.serve_batch(&batch);
        assert_eq!(s3.cache_hits, s3.unique);
        assert_eq!(s3.stale_hits, 0);
    }

    #[test]
    fn publish_packs_flat_slab_atomically() {
        use peanut_core::Shortcut;
        use peanut_junction::{NumericState, RootedTree};
        let bn = fixtures::figure1();
        let tree = build_junction_tree(&bn).unwrap();
        let rooted = RootedTree::new(&tree);
        let mut ns = NumericState::initialize(&tree, &bn).unwrap();
        ns.calibrate(&tree, &rooted).unwrap();
        let s = Shortcut::from_nodes(&tree, &rooted, vec![0]).unwrap();
        let (pot, _) = s.materialize(&tree, &rooted, &ns).unwrap();
        let mat = Materialization {
            shortcuts: vec![peanut_core::MaterializedShortcut {
                ratio: 1.0,
                benefit: 1.0,
                potential: Some(pot.clone()),
                shortcut: s,
            }],
            overlapping: false,
            epoch: 0,
        };

        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        assert!(serving.flat_materialization().is_empty());

        let epoch = serving.publish(mat);
        let flat = serving.flat_materialization();
        // the pack carries the published epoch and the exact table bytes —
        // the relocatable artifact a per-epoch store would persist
        assert_eq!(flat.epoch(), epoch);
        assert_eq!(flat.len(), 1);
        let packed = flat.table(0).unwrap();
        assert_eq!(packed.len(), pot.len());
        for (a, b) in packed.iter().zip(pot.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // reattaching the slab restores a blanked materialization bitwise
        let mut blank = (*serving.materialization()).clone();
        blank.shortcuts[0]
            .potential
            .as_mut()
            .unwrap()
            .values_mut()
            .fill(0.0);
        assert!(flat.unpack_into(&mut blank));
        assert_eq!(
            blank.shortcuts[0].potential.as_ref().unwrap().values(),
            pot.values()
        );
    }

    #[test]
    fn stats_weigh_arrivals_not_computations() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let q = ServeRequest::marginal(Scope::from_indices(&[0, 3]));
        let batch = vec![q.clone(), q.clone(), q.clone()];
        serving.serve_batch(&batch); // 1 computation, 3 arrivals
        serving.serve_batch(&batch); // 1 cache hit, 3 arrivals
        let snap = serving.stats().snapshot();
        assert_eq!(snap.queries, 6, "stats must count arrivals");
        let counts = serving.stats().scope_counts();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].1, 6);
        // publish resets the accumulator for the new epoch
        serving.publish(Materialization::default());
        assert_eq!(serving.stats().snapshot().queries, 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let bn = fixtures::sprinkler();
        let tree = build_junction_tree(&bn).unwrap();
        let engine = QueryEngine::numeric(&tree, &bn).unwrap();
        let serving =
            ServingEngine::new(engine, Materialization::default(), ServingConfig::default());
        let (answers, stats) = serving.serve_batch(&[]);
        assert!(answers.is_empty());
        assert_eq!(stats.queries, 0);
    }
}
