//! Multi-tenant sharded serving: one engine, many trees, shared workers.
//!
//! A [`ShardedServingEngine`] is a registry of tenants — each a calibrated
//! [`QueryEngine`] with its own
//! epoch-versioned [`Materialization`],
//! per-epoch [`WorkloadStats`](peanut_core::WorkloadStats) accumulator and
//! answer cache (the per-tree epoch state of the lifecycle layer, made the
//! unit of sharding) — behind **one** worker pool.
//!
//! [`serve_mixed`](ShardedServingEngine::serve_mixed) accepts a batch of
//! `(TenantId, ServeRequest)` arrivals, the traffic shape a fleet endpoint
//! drains:
//!
//! 1. arrivals are routed to their shard and deduplicated **per tenant**
//!    (two tenants asking the same request are different computations over
//!    different models — answers never cross shards);
//! 2. each shard's unique queries probe that shard's epoch-tagged answer
//!    cache (one lock scope per shard, stale entries drop lazily exactly as
//!    in single-tenant serving);
//! 3. the remaining work items of *all* shards are flattened into one list
//!    and claimed work-stealing-style by the shared pool — a worker serves
//!    whatever tenant's query comes next, reusing one
//!    [`Scratch`] across tenants, so a traffic spike
//!    on one tenant soaks up the whole pool instead of its private slice.
//!
//! Per-tenant epoch state stays fully isolated: a
//! [`publish`](crate::ServingEngine::publish) on one tenant bumps only that
//! tenant's epoch and invalidates only that tenant's cache entries.
//!
//! # Cold-tenant paging
//!
//! With a [`StoreConfig`] attached ([`set_store`](ShardedServingEngine::set_store))
//! and [`max_resident`](ShardConfig::max_resident) set, the registry becomes
//! an LRU **resident set**: registration persists each tenant's epoch to the
//! store, and after every mixed batch the least-recently-used tenants beyond
//! the cap are paged out — their engine `Arc` dropped, only the junction
//! tree reference and the store file kept. A paged-out tenant's next arrival
//! faults it back in by rehydrating the persisted epoch (O(mmap + memcpy),
//! no calibration, no selection DP) and answers bit-identically to an
//! always-resident fleet. Fault/page-out telemetry lands in
//! [`MixedBatchStats`] per batch and in [`PagingStats`] cumulatively.

use crate::engine::{
    answer_one, Answer, AnswerCache, BatchStats, CacheLookup, Served, ServingConfig, ServingEngine,
};
use crate::overload::ServeOutcome;
use crate::pool::{PoolCell, PoolStats, SpawnMode, WorkerPool};
use peanut_core::exec::Executor;
use peanut_core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use peanut_core::sync::{thread, Arc, OnceLock, RwLock};
use peanut_core::{Materialization, OnlineEngine, ServeRequest};
use peanut_junction::{JunctionTree, QueryEngine};
use peanut_pgm::{PgmError, Scratch};
use peanut_store::{rehydrate_engine, StoreConfig, StoredEpoch};
use std::collections::HashMap;
use std::panic::resume_unwind;
use std::time::{Duration, Instant};

/// Identifies one tenant (one model) of a sharded engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// Fleet-level serving knobs. Per-tenant engines inherit `dedup` and
/// `cache_capacity`; the worker pool is shared and sized here.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Shared worker threads; `0` means one per core.
    pub workers: usize,
    /// Coalesce duplicate queries within a batch, per tenant.
    pub dedup: bool,
    /// Per-tenant answer-cache capacity (`0` disables caching).
    pub cache_capacity: usize,
    /// How mixed batches fan out: one persistent [`WorkerPool`] shared by
    /// every shard (default) or scoped per-batch threads.
    pub spawn: SpawnMode,
    /// Resident-set cap: at most this many tenants keep an engine in RAM;
    /// the least-recently-used beyond it are paged out to the store after
    /// each batch. `0` (default) disables paging. Takes effect only with a
    /// store attached ([`set_store`](ShardedServingEngine::set_store)).
    pub max_resident: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        let d = ServingConfig::default();
        ShardConfig {
            workers: d.workers,
            dedup: d.dedup,
            cache_capacity: d.cache_capacity,
            spawn: d.spawn,
            max_resident: 0,
        }
    }
}

impl ShardConfig {
    /// Sets the shared worker-thread count (chainable). `0` means one per
    /// core.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables per-tenant coalescing (chainable).
    pub fn with_dedup(mut self, dedup: bool) -> Self {
        self.dedup = dedup;
        self
    }

    /// Sets the per-tenant answer-cache capacity (chainable).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the fan-out mode (chainable).
    pub fn with_spawn(mut self, spawn: SpawnMode) -> Self {
        self.spawn = spawn;
        self
    }

    /// Sets the resident-set cap (chainable). `0` disables paging.
    pub fn with_max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = max_resident;
        self
    }
}

/// Fleet-level telemetry of one mixed batch.
#[derive(Clone, Debug, Default)]
pub struct MixedBatchStats {
    /// Arrivals submitted.
    pub arrivals: usize,
    /// Arrivals rejected because their tenant is not registered.
    pub unknown_tenant: usize,
    /// Unique `(tenant, query)` computations after per-tenant coalescing.
    pub unique: usize,
    /// Unique queries served from a shard's answer cache.
    pub cache_hits: usize,
    /// Cache entries found stale (older epoch) and lazily dropped.
    pub stale_hits: usize,
    /// Summed operation count over freshly computed queries, all shards.
    pub total_ops: u64,
    /// Summed shortcut uses over freshly computed queries, all shards.
    pub shortcuts_used: usize,
    /// Wall-clock time of the whole mixed batch.
    pub wall: Duration,
    /// Tenants faulted in from the store during this batch.
    pub faults: usize,
    /// Fault-ins that failed (all of the tenant's arrivals errored).
    pub fault_errors: usize,
    /// Tenants paged out at the end of this batch.
    pub page_outs: usize,
    /// Tenants resident after this batch (and its evictions).
    pub resident: usize,
    /// Wall-clock time spent faulting tenants in during this batch.
    pub fault_wall: Duration,
    /// Per-tenant breakdown (only tenants with arrivals in this batch),
    /// in registry order. `wall` on the entries is the whole batch's.
    pub per_tenant: Vec<(TenantId, BatchStats)>,
}

/// Cumulative paging telemetry of a sharded engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct PagingStats {
    /// Registered tenants.
    pub registered: usize,
    /// Tenants currently holding an engine in RAM.
    pub resident: usize,
    /// The configured resident-set cap (`0` = unlimited).
    pub max_resident: usize,
    /// Tenants faulted in from the store since construction.
    pub faults: u64,
    /// Fault-ins that failed.
    pub fault_errors: u64,
    /// Tenants paged out since construction.
    pub page_outs: u64,
    /// Total wall-clock time spent faulting tenants in.
    pub fault_wall: Duration,
}

struct TenantShard<'t> {
    id: TenantId,
    /// The tenant's calibrated model structure — kept while the engine is
    /// paged out, so a fault-in can rehydrate against it.
    tree: &'t JunctionTree,
    /// The engine while resident; `None` while paged out to the store.
    resident: RwLock<Option<Arc<ServingEngine<'t>>>>,
    /// Fleet-clock tick of the last access (LRU eviction order).
    last_used: AtomicU64,
}

/// A registry of per-tenant serving engines sharing one worker pool.
///
/// ```
/// use peanut_core::Materialization;
/// use peanut_junction::{build_junction_tree, QueryEngine};
/// use peanut_pgm::{fixtures, Scope};
/// use peanut_serving::{ServeRequest, ShardConfig, ShardedServingEngine, TenantId};
///
/// let bn = fixtures::sprinkler();
/// let tree = build_junction_tree(&bn).unwrap();
/// let mut fleet = ShardedServingEngine::new(ShardConfig::default());
/// fleet
///     .register(
///         TenantId(0),
///         QueryEngine::numeric(&tree, &bn).unwrap(),
///         Materialization::default(),
///     )
///     .unwrap();
///
/// let arrivals = [(TenantId(0), ServeRequest::marginal(Scope::from_indices(&[1])))];
/// let (outcomes, stats) = fleet.serve_mixed(&arrivals);
/// assert!(outcomes[0].is_served());
/// assert_eq!(stats.per_tenant.len(), 1);
/// ```
pub struct ShardedServingEngine<'t> {
    shards: Vec<TenantShard<'t>>,
    index: HashMap<TenantId, usize>,
    cfg: ShardConfig,
    /// The **one** persistent pool every shard's fresh work fans out on,
    /// spawned lazily on the first mixed batch that needs it.
    pool: PoolCell,
    /// Epoch persistence + paging backend; `None` keeps every tenant
    /// resident forever (the pre-store behavior).
    store: Option<StoreConfig>,
    /// Logical fleet clock: one tick per access, feeds `last_used`.
    clock: AtomicU64,
    faults: AtomicU64,
    fault_errors: AtomicU64,
    page_outs: AtomicU64,
    fault_nanos: AtomicU64,
}

impl<'t> ShardedServingEngine<'t> {
    /// An empty registry.
    pub fn new(cfg: ShardConfig) -> Self {
        ShardedServingEngine {
            shards: Vec::new(),
            index: HashMap::new(),
            cfg,
            pool: PoolCell::new(),
            store: None,
            clock: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            fault_errors: AtomicU64::new(0),
            page_outs: AtomicU64::new(0),
            fault_nanos: AtomicU64::new(0),
        }
    }

    /// Attaches epoch persistence and enables paging: tenants registered
    /// from here on persist their epoch on registration and on every
    /// publish, and — with [`ShardConfig::max_resident`] set — cold
    /// tenants page out to `cfg.dir` after each batch. Attach before
    /// registering tenants.
    pub fn set_store(&mut self, cfg: StoreConfig) {
        self.store = Some(cfg);
    }

    /// The attached store configuration, if any.
    pub fn store(&self) -> Option<&StoreConfig> {
        self.store.as_ref()
    }

    /// The fleet's shared persistent worker pool, spawning it on first
    /// use (sized by [`workers`](Self::workers)).
    pub fn pool(&self) -> &Arc<WorkerPool> {
        self.pool.get_or_spawn(self.workers())
    }

    /// Shared-pool telemetry, if the pool has been spawned.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.pool.stats()
    }

    /// Pre-spawns the shared pool so the first fanned-out mixed batch
    /// does not pay thread-spawn latency in-band. A no-op when mixed
    /// batches would never fan out.
    pub fn warm_pool(&self) {
        self.pool.warm(self.cfg.spawn, self.workers());
    }

    /// Executor for off-path fleet work (candidate re-selection): the
    /// shared pool's re-materialization lane when mixed batches fan out
    /// (so a fleet re-selection never head-of-line blocks serving waves),
    /// a scoped `threads`-wide fan-out otherwise (sequential when 1).
    pub(crate) fn offline_exec(&self, threads: usize) -> Box<dyn Executor + '_> {
        self.pool
            .offline_exec(self.cfg.spawn, self.workers(), threads)
    }

    /// Registers a tenant: a calibrated engine plus its initial
    /// materialization. Fails when the id is already taken. The tenant's
    /// private engine is configured with one worker — batch fan-out belongs
    /// to the shared pool, not the shard.
    ///
    /// With a store attached, registration also persists the tenant's
    /// initial epoch (so it can be paged out before its first publish);
    /// a failed write fails the registration loudly. Persistence needs a
    /// calibrated slab, so store-backed fleets require numeric engines.
    pub fn register(
        &mut self,
        id: TenantId,
        engine: QueryEngine<'t>,
        mat: Materialization,
    ) -> Result<(), PgmError> {
        if self.index.contains_key(&id) {
            return Err(PgmError::DuplicateTenant(id.0));
        }
        let tree = engine.tree();
        let mut serving = ServingEngine::new(engine, mat, self.tenant_config());
        if let Some(store) = &self.store {
            serving.set_store(store.clone(), id.0);
            serving.persist_current()?;
        }
        // keep the registry sorted by id so every fleet-level iteration
        // (controller ticks, telemetry) is deterministic
        let at = self.shards.partition_point(|s| s.id < id);
        self.shards.insert(
            at,
            TenantShard {
                id,
                tree,
                resident: RwLock::new(Some(Arc::new(serving))),
                // ordering: registration happens under `&mut self`.
                last_used: AtomicU64::new(self.clock.load(Ordering::Relaxed)),
            },
        );
        self.index.clear();
        for (i, s) in self.shards.iter().enumerate() {
            self.index.insert(s.id, i);
        }
        Ok(())
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The per-tenant serving engine (epoch state, stats, cache — and
    /// [`publish`](ServingEngine::publish) for tenant-local swaps),
    /// faulting it in from the store when paged out. `None` for unknown
    /// tenants — and for paged-out tenants whose fault-in failed (counted
    /// in [`PagingStats::fault_errors`]).
    pub fn tenant(&self, id: TenantId) -> Option<Arc<ServingEngine<'t>>> {
        let &slot = self.index.get(&id)?;
        self.touch(slot, self.tick());
        let engine = self.shard_engine(slot).ok()?;
        self.enforce_residency();
        Some(engine)
    }

    /// All **resident** tenants with their engines, in id order. Paged-out
    /// tenants are skipped — fleet-level iteration (controller ticks,
    /// telemetry) works the hot set, not the archive; ask for a cold
    /// tenant by id ([`tenant`](Self::tenant)) to fault it in.
    pub fn tenants(&self) -> Vec<(TenantId, Arc<ServingEngine<'t>>)> {
        self.shards
            .iter()
            .filter_map(|s| s.resident.read().as_ref().map(|e| (s.id, Arc::clone(e))))
            .collect()
    }

    /// Tenants currently holding an engine in RAM.
    pub fn resident_len(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.resident.read().is_some())
            .count()
    }

    /// Cumulative paging telemetry.
    pub fn paging_stats(&self) -> PagingStats {
        // ordering: telemetry counters, advisory reads.
        let faults = self.faults.load(Ordering::Relaxed);
        let fault_errors = self.fault_errors.load(Ordering::Relaxed);
        let page_outs = self.page_outs.load(Ordering::Relaxed);
        // ordering: same — advisory read of the fault wall-time counter.
        let fault_wall = Duration::from_nanos(self.fault_nanos.load(Ordering::Relaxed));
        PagingStats {
            registered: self.shards.len(),
            resident: self.resident_len(),
            max_resident: self.cfg.max_resident,
            faults,
            fault_errors,
            page_outs,
            fault_wall,
        }
    }

    /// The per-tenant engine configuration: shards inherit the fleet's
    /// dedup/cache/spawn knobs but always run one worker — batch fan-out
    /// belongs to the shared pool, not the shard.
    fn tenant_config(&self) -> ServingConfig {
        ServingConfig::default()
            .with_workers(1)
            .with_dedup(self.cfg.dedup)
            .with_cache_capacity(self.cfg.cache_capacity)
            .with_spawn(self.cfg.spawn)
    }

    /// Advances the fleet clock by one tick and returns the new value.
    fn tick(&self) -> u64 {
        // ordering: the clock only orders LRU eviction; ties are benign.
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records an access to `slot` at clock value `now`.
    fn touch(&self, slot: usize, now: u64) {
        // ordering: advisory recency stamp read by the evictor; a stale
        // read evicts a slightly-warmer tenant, never corrupts state.
        self.shards[slot].last_used.store(now, Ordering::Relaxed);
    }

    /// The engine of `slot`, faulting it in from the store when paged
    /// out. Fault-ins and their wall time land in the paging counters.
    fn shard_engine(&self, slot: usize) -> Result<Arc<ServingEngine<'t>>, PgmError> {
        let shard = &self.shards[slot];
        if let Some(engine) = shard.resident.read().as_ref() {
            return Ok(Arc::clone(engine));
        }
        let mut resident = shard.resident.write();
        // double-check: another thread may have faulted it in while we
        // waited for the write lock
        if let Some(engine) = resident.as_ref() {
            return Ok(Arc::clone(engine));
        }
        let t0 = Instant::now();
        let faulted = self.fault_in(shard);
        // ordering: telemetry counters only.
        self.fault_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match faulted {
            Ok(engine) => {
                // ordering: telemetry counter only.
                self.faults.fetch_add(1, Ordering::Relaxed);
                *resident = Some(Arc::clone(&engine));
                Ok(engine)
            }
            Err(e) => {
                // ordering: telemetry counter only.
                self.fault_errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Rehydrates a paged-out tenant's newest persisted epoch: reattach
    /// the calibrated slab, rebuild the materialization structurally, and
    /// wire the fresh engine back to the store — no calibration pass, no
    /// selection DP.
    fn fault_in(&self, shard: &TenantShard<'t>) -> Result<Arc<ServingEngine<'t>>, PgmError> {
        let Some(store) = &self.store else {
            return Err(PgmError::StoreIo {
                path: "<unconfigured>".into(),
                msg: format!("{} is paged out but the fleet has no store", shard.id),
            });
        };
        let (epoch, path) = store
            .latest_epoch(shard.id.0)
            .ok_or_else(|| PgmError::StoreIo {
                path: store.dir.display().to_string(),
                msg: format!("no persisted epoch for {}", shard.id),
            })?;
        let stored = StoredEpoch::open(&path, store.verify_checksum)?;
        let (engine, mat) = rehydrate_engine(shard.tree, &stored)?;
        let mut serving = ServingEngine::new(engine, mat, self.tenant_config());
        serving.set_store(store.clone(), shard.id.0);
        // the file we just rehydrated from is this epoch's persisted form;
        // the next page-out must not rewrite it
        serving.mark_persisted(epoch);
        Ok(Arc::new(serving))
    }

    /// Pages `slot` out: persists its current epoch if the store does not
    /// already hold it, then drops the engine. Returns whether the slot
    /// was resident. Publishes already persist write-behind, so the
    /// common page-out is a pure pointer drop.
    fn page_out(&self, slot: usize) -> Result<bool, PgmError> {
        let shard = &self.shards[slot];
        let mut resident = shard.resident.write();
        let Some(engine) = resident.as_ref() else {
            return Ok(false);
        };
        if engine.persisted_epoch() != Some(engine.epoch()) {
            engine.persist_current()?;
        }
        *resident = None;
        // ordering: telemetry counter only.
        self.page_outs.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Evicts least-recently-used tenants until the resident set fits
    /// [`ShardConfig::max_resident`]. A no-op without a store or a cap. A
    /// tenant whose persist fails stays resident (never drop the only
    /// copy); the error is counted in [`PagingStats::fault_errors`].
    pub fn enforce_residency(&self) {
        if self.store.is_none() || self.cfg.max_resident == 0 {
            return;
        }
        let mut skip: Vec<usize> = Vec::new();
        while self.resident_len() > self.cfg.max_resident {
            let coldest = self
                .shards
                .iter()
                .enumerate()
                .filter(|(slot, s)| !skip.contains(slot) && s.resident.read().is_some())
                // ordering: advisory recency stamp; see `touch`.
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed));
            let Some((slot, _)) = coldest else { break };
            if self.page_out(slot).is_err() {
                // ordering: telemetry counter only.
                self.fault_errors.fetch_add(1, Ordering::Relaxed);
                skip.push(slot);
            }
        }
    }

    /// The worker count a mixed batch will actually use (before capping by
    /// the amount of fresh work).
    pub fn workers(&self) -> usize {
        if self.cfg.workers > 0 {
            self.cfg.workers
        } else {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// Answers a mixed batch of `(tenant, request)` arrivals. Outcomes
    /// come back in submission order (unknown tenants and fault failures
    /// are [`ServeOutcome::Failed`], never a batch error). Duplicates
    /// coalesce *within* a tenant only; every shard keeps its own cache
    /// and epoch. All shards' fresh work is served by one shared pool.
    #[allow(clippy::type_complexity)]
    pub fn serve_mixed(
        &self,
        batch: &[(TenantId, ServeRequest)],
    ) -> (Vec<ServeOutcome>, MixedBatchStats) {
        let start = Instant::now();
        let mut mstats = MixedBatchStats {
            arrivals: batch.len(),
            ..MixedBatchStats::default()
        };
        if batch.is_empty() {
            return (Vec::new(), mstats);
        }
        // ordering: telemetry counters; the end-of-batch deltas attribute
        // this batch's paging activity (monotone counters never underflow).
        let faults0 = self.faults.load(Ordering::Relaxed);
        let fault_errors0 = self.fault_errors.load(Ordering::Relaxed);
        let page_outs0 = self.page_outs.load(Ordering::Relaxed);
        let fault_nanos0 = self.fault_nanos.load(Ordering::Relaxed);
        let now = self.tick();

        // --- route arrivals to shards, deduplicating per tenant ---
        // assign[i] = Some((shard slot, unique index within shard))
        let n_shards = self.shards.len();
        let mut uniques: Vec<Vec<&ServeRequest>> = vec![Vec::new(); n_shards];
        let mut first_of: Vec<HashMap<&ServeRequest, usize>> = vec![HashMap::new(); n_shards];
        let mut assign: Vec<Option<(usize, usize)>> = Vec::with_capacity(batch.len());
        for (tid, q) in batch {
            let Some(&slot) = self.index.get(tid) else {
                mstats.unknown_tenant += 1;
                assign.push(None);
                continue;
            };
            let u = if self.cfg.dedup {
                *first_of[slot].entry(q).or_insert_with(|| {
                    uniques[slot].push(q);
                    uniques[slot].len() - 1
                })
            } else {
                uniques[slot].push(q);
                uniques[slot].len() - 1
            };
            assign.push(Some((slot, u)));
        }

        // --- fault routed shards in (paged-out tenants rehydrate) ---
        // A failed fault-in errors every arrival of that tenant, never the
        // batch: the other shards keep serving.
        let mut engines: Vec<Option<Arc<ServingEngine<'t>>>> = vec![None; n_shards];
        let mut fault_failed: Vec<Option<PgmError>> = (0..n_shards).map(|_| None).collect();
        for slot in 0..n_shards {
            if uniques[slot].is_empty() {
                continue;
            }
            self.touch(slot, now);
            match self.shard_engine(slot) {
                Ok(engine) => engines[slot] = Some(engine),
                Err(e) => fault_failed[slot] = Some(e),
            }
        }

        // --- per-shard epoch snapshots + cache probes ---
        struct ShardRun<'t> {
            serving: Arc<ServingEngine<'t>>,
            mat: Arc<Materialization>,
            stats: Arc<peanut_core::WorkloadStats>,
            epoch: u64,
            results: Vec<Option<Result<Arc<Answer>, PgmError>>>,
            from_cache: Vec<bool>,
            bstats: BatchStats,
        }
        let mut runs: Vec<Option<ShardRun<'t>>> = Vec::with_capacity(n_shards);
        let mut work: Vec<(usize, usize)> = Vec::new(); // (shard slot, unique idx)
        for slot in 0..n_shards {
            let Some(serving) = engines[slot].as_ref().map(Arc::clone) else {
                runs.push(None);
                continue;
            };
            let (mat, stats) = serving.epoch_snapshot();
            let epoch = mat.epoch;
            let n = uniques[slot].len();
            let mut results: Vec<Option<Result<Arc<Answer>, PgmError>>> = Vec::new();
            results.resize_with(n, || None);
            let mut from_cache = vec![false; n];
            let mut bstats = BatchStats {
                unique: n,
                epoch,
                ..BatchStats::default()
            };
            if serving.cache_capacity() > 0 {
                serving.with_cache(|cache: &mut AnswerCache| {
                    for (u, q) in uniques[slot].iter().enumerate() {
                        match cache.lookup(q, epoch) {
                            CacheLookup::Hit(hit) => {
                                results[u] = Some(Ok(hit));
                                from_cache[u] = true;
                                bstats.cache_hits += 1;
                            }
                            CacheLookup::StaleDropped => {
                                bstats.stale_hits += 1;
                                work.push((slot, u));
                            }
                            CacheLookup::Miss => work.push((slot, u)),
                        }
                    }
                });
            } else {
                work.extend((0..n).map(|u| (slot, u)));
            }
            runs.push(Some(ShardRun {
                serving,
                mat,
                stats,
                epoch,
                results,
                from_cache,
                bstats,
            }));
        }

        // --- shared-pool fan-out over all shards' fresh work ---
        type WorkerOut = Vec<(usize, usize, Result<Arc<Answer>, PgmError>)>;
        let n_workers = self.workers().min(work.len()).max(1);
        let compute = |slot: usize, u: usize, scratch: &mut Scratch| {
            // lint:allow(hot_panic) — invariant: `work` only lists shards
            // that were given a run above.
            let run = runs[slot].as_ref().expect("worked shard has a run");
            let online = OnlineEngine::with_stats(run.serving.engine_arc(), &run.mat, &run.stats);
            answer_one(&online, uniques[slot][u], scratch, run.epoch).map(Arc::new)
        };
        if work.len() <= 1 || n_workers == 1 {
            // in-thread fast path: no fan-out overhead for small/warm batches
            let mut scratch = Scratch::new();
            let computed: WorkerOut = work
                .iter()
                .map(|&(slot, u)| (slot, u, compute(slot, u, &mut scratch)))
                .collect();
            for (slot, u, r) in computed {
                // lint:allow(hot_panic) — same invariant as `compute`.
                runs[slot].as_mut().expect("run").results[u] = Some(r);
            }
        } else if self.cfg.spawn == SpawnMode::Persistent {
            // the shared persistent pool serves whatever tenant's query
            // comes next, on the serving lane so a concurrent fleet
            // re-selection wave is preempted between tasks; worker
            // scratches persist across batches and tenants alike. Each
            // task owns slot `w`, so results land lock-free instead of
            // contending on one mutex.
            let out: Vec<OnceLock<Result<Arc<Answer>, PgmError>>> =
                (0..work.len()).map(|_| OnceLock::new()).collect();
            self.pool().run_wave(work.len(), &|w, scratch| {
                let (slot, u) = work[w];
                let r = compute(slot, u, scratch);
                assert!(out[w].set(r).is_ok(), "wave claims each index once");
            });
            for (w, cell) in out.into_iter().enumerate() {
                let (slot, u) = work[w];
                // lint:allow(hot_panic) — protocol invariant: run_wave does
                // not return before every claimed index has completed.
                let r = cell.into_inner().expect("completed wave ran every task");
                runs[slot].as_mut().expect("run").results[u] = Some(r);
            }
        } else {
            let next = AtomicUsize::new(0);
            let worker_outs: Vec<WorkerOut> = thread::scope(|s| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|_| {
                        s.spawn(|| {
                            let mut scratch = Scratch::new();
                            let mut out: WorkerOut = Vec::new();
                            loop {
                                // ordering: work-claiming counter only; the
                                // scope join publishes the results.
                                let w = next.fetch_add(1, Ordering::Relaxed);
                                if w >= work.len() {
                                    break;
                                }
                                let (slot, u) = work[w];
                                out.push((slot, u, compute(slot, u, &mut scratch)));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // re-raise a worker panic on the submitting thread,
                    // matching the pool path's semantics
                    .map(|h| h.join().unwrap_or_else(|p| resume_unwind(p)))
                    .collect()
            });
            for (slot, u, r) in worker_outs.into_iter().flatten() {
                // lint:allow(hot_panic) — same invariant as `compute`.
                runs[slot].as_mut().expect("run").results[u] = Some(r);
            }
        }

        // --- per-shard admission, telemetry and arrival accounting ---
        let mut uses: Vec<Vec<u64>> = uniques.iter().map(|u| vec![0u64; u.len()]).collect();
        for a in assign.iter().flatten() {
            uses[a.0][a.1] += 1;
        }
        for (slot, run) in runs.iter_mut().enumerate() {
            let Some(run) = run else { continue };
            let fresh: Vec<(ServeRequest, Arc<Answer>)> = (0..uniques[slot].len())
                .filter(|&u| !run.from_cache[u])
                .filter_map(|u| match &run.results[u] {
                    Some(Ok(a)) => Some(((*uniques[slot][u]).clone(), Arc::clone(a))),
                    _ => None,
                })
                .collect();
            let capacity = run.serving.cache_capacity();
            if capacity > 0 && !fresh.is_empty() {
                run.serving.with_cache(|cache: &mut AnswerCache| {
                    for (q, a) in fresh {
                        cache.insert(capacity, q, a);
                    }
                });
            }
            for (u, q) in uniques[slot].iter().enumerate() {
                if let Some(Ok(a)) = &run.results[u] {
                    if !run.from_cache[u] {
                        run.bstats.total_ops = run.bstats.total_ops.saturating_add(a.cost.ops);
                        run.bstats.shortcuts_used += a.cost.shortcuts_used;
                    }
                    // fresh computations recorded themselves once via the
                    // worker's OnlineEngine; duplicates and cache hits top
                    // up so this epoch's stats weigh arrivals
                    let extra = if run.from_cache[u] {
                        uses[slot][u]
                    } else {
                        uses[slot][u] - 1
                    };
                    if extra > 0 {
                        run.stats
                            .record_n(&q.stat_scope(), &a.cost, a.baseline_ops, extra);
                    }
                    // evidence contexts weigh arrivals too (the worker's
                    // OnlineEngine records scopes, not evidence)
                    if !q.is_marginal() {
                        run.stats
                            .record_evidence(&q.evidence_scope(), uses[slot][u]);
                    }
                }
            }
            run.bstats.queries = uses[slot].iter().map(|&n| n as usize).sum();
        }

        // --- fan back out in arrival order ---
        let answers: Vec<ServeOutcome> = batch
            .iter()
            .zip(&assign)
            .map(|((tid, _), a)| match a {
                None => ServeOutcome::Failed(PgmError::UnknownTenant(tid.0)),
                Some((slot, _)) if fault_failed[*slot].is_some() => {
                    // lint:allow(hot_panic) — guarded by the match arm.
                    ServeOutcome::Failed(fault_failed[*slot].clone().expect("checked above"))
                }
                Some((slot, u)) => {
                    // lint:allow(hot_panic) — invariants: assigned arrivals
                    // have runs, and every unique is a hit or in `work`.
                    let run = runs[*slot].as_ref().expect("run");
                    match run.results[*u].as_ref().expect("all uniques computed") {
                        Ok(ans) => ServeOutcome::Served(Served {
                            answer: Arc::clone(ans),
                            from_cache: run.from_cache[*u],
                        }),
                        Err(e) => ServeOutcome::Failed(e.clone()),
                    }
                }
            })
            .collect();

        mstats.wall = start.elapsed();
        for (slot, run) in runs.into_iter().enumerate() {
            let Some(mut run) = run else { continue };
            run.bstats.wall = mstats.wall;
            mstats.unique += run.bstats.unique;
            mstats.cache_hits += run.bstats.cache_hits;
            mstats.stale_hits += run.bstats.stale_hits;
            mstats.total_ops = mstats.total_ops.saturating_add(run.bstats.total_ops);
            mstats.shortcuts_used += run.bstats.shortcuts_used;
            mstats.per_tenant.push((self.shards[slot].id, run.bstats));
        }

        // --- paging: evict past the cap, attribute this batch's activity ---
        self.enforce_residency();
        // ordering: telemetry counters, delta reads; see the batch start.
        let faults1 = self.faults.load(Ordering::Relaxed);
        let fault_errors1 = self.fault_errors.load(Ordering::Relaxed);
        let page_outs1 = self.page_outs.load(Ordering::Relaxed);
        // ordering: same — delta read of the fault wall-time counter.
        let fault_nanos1 = self.fault_nanos.load(Ordering::Relaxed);
        mstats.faults = faults1.saturating_sub(faults0) as usize;
        mstats.fault_errors = fault_errors1.saturating_sub(fault_errors0) as usize;
        mstats.page_outs = page_outs1.saturating_sub(page_outs0) as usize;
        mstats.fault_wall = Duration::from_nanos(fault_nanos1.saturating_sub(fault_nanos0));
        mstats.resident = self.resident_len();
        (answers, mstats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peanut_junction::build_junction_tree;
    use peanut_pgm::{fixtures, joint, Scope};

    fn two_tenant_engine<'a>(
        trees: &'a [peanut_junction::JunctionTree],
        bns: &'a [peanut_pgm::BayesianNetwork],
        cfg: ShardConfig,
    ) -> ShardedServingEngine<'a> {
        let mut sharded = ShardedServingEngine::new(cfg);
        for (i, (tree, bn)) in trees.iter().zip(bns).enumerate() {
            let engine = QueryEngine::numeric(tree, bn).unwrap();
            sharded
                .register(TenantId(i as u32), engine, Materialization::default())
                .unwrap();
        }
        sharded
    }

    fn fixtures_pair() -> (
        Vec<peanut_pgm::BayesianNetwork>,
        Vec<peanut_junction::JunctionTree>,
    ) {
        let bns = vec![fixtures::figure1(), fixtures::sprinkler()];
        let trees = bns
            .iter()
            .map(|bn| build_junction_tree(bn).unwrap())
            .collect();
        (bns, trees)
    }

    #[test]
    fn mixed_batch_routes_to_the_right_model() {
        let (bns, trees) = fixtures_pair();
        let sharded = two_tenant_engine(&trees, &bns, ShardConfig::default().with_workers(3));
        // the same scope asked of both tenants must answer from each
        // tenant's own model
        let s = Scope::from_indices(&[0, 2]);
        let batch = vec![
            (TenantId(0), ServeRequest::marginal(s.clone())),
            (TenantId(1), ServeRequest::marginal(s.clone())),
            (TenantId(0), ServeRequest::marginal(s.clone())),
        ];
        let (answers, stats) = sharded.serve_mixed(&batch);
        assert_eq!(stats.arrivals, 3);
        assert_eq!(stats.unique, 2, "dedup is per tenant, never across");
        assert_eq!(stats.per_tenant.len(), 2);
        for (i, bn) in bns.iter().enumerate() {
            let want = joint::marginal(bn, &s).unwrap();
            let got = answers[i].served().unwrap();
            assert!(got.potential.max_abs_diff(&want).unwrap() < 1e-9);
        }
        // arrivals 0 and 2 are the same tenant's duplicate: shared Arc
        let (a0, a2) = (answers[0].served().unwrap(), answers[2].served().unwrap());
        assert!(Arc::ptr_eq(&a0.answer, &a2.answer));
        // different tenants must never share an answer
        let a1 = answers[1].served().unwrap();
        assert!(!Arc::ptr_eq(&a0.answer, &a1.answer));
    }

    #[test]
    fn unknown_tenant_errors_per_arrival() {
        let (bns, trees) = fixtures_pair();
        let sharded = two_tenant_engine(&trees, &bns, ShardConfig::default());
        let batch = vec![
            (
                TenantId(0),
                ServeRequest::marginal(Scope::from_indices(&[0])),
            ),
            (
                TenantId(9),
                ServeRequest::marginal(Scope::from_indices(&[0])),
            ),
        ];
        let (answers, stats) = sharded.serve_mixed(&batch);
        assert!(answers[0].is_served());
        assert_eq!(answers[1].failure(), Some(&PgmError::UnknownTenant(9)));
        assert_eq!(stats.unknown_tenant, 1);
        assert_eq!(stats.unique, 1);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let (bns, trees) = fixtures_pair();
        let mut sharded = ShardedServingEngine::new(ShardConfig::default());
        let e1 = QueryEngine::numeric(&trees[0], &bns[0]).unwrap();
        let e2 = QueryEngine::numeric(&trees[0], &bns[0]).unwrap();
        sharded
            .register(TenantId(7), e1, Materialization::default())
            .unwrap();
        assert_eq!(
            sharded.register(TenantId(7), e2, Materialization::default()),
            Err(PgmError::DuplicateTenant(7))
        );
        assert_eq!(sharded.len(), 1);
    }

    #[test]
    fn per_tenant_caches_are_isolated_across_publish() {
        let (bns, trees) = fixtures_pair();
        let sharded = two_tenant_engine(&trees, &bns, ShardConfig::default());
        let batch: Vec<(TenantId, ServeRequest)> = (0..2u32)
            .flat_map(|t| {
                vec![
                    (
                        TenantId(t),
                        ServeRequest::marginal(Scope::from_indices(&[0, 1])),
                    ),
                    (
                        TenantId(t),
                        ServeRequest::marginal(Scope::from_indices(&[2])),
                    ),
                ]
            })
            .collect();
        let (first, _) = sharded.serve_mixed(&batch);
        // swap tenant 0 only
        let epoch = sharded
            .tenant(TenantId(0))
            .unwrap()
            .publish(Materialization::default());
        assert_eq!(epoch, 1);
        assert_eq!(sharded.tenant(TenantId(1)).unwrap().epoch(), 0);

        let (second, stats) = sharded.serve_mixed(&batch);
        let by_tenant: HashMap<TenantId, BatchStats> = stats.per_tenant.iter().cloned().collect();
        // tenant 0: all stale, recomputed under epoch 1
        let t0 = &by_tenant[&TenantId(0)];
        assert_eq!(t0.cache_hits, 0);
        assert_eq!(t0.stale_hits, t0.unique);
        // tenant 1: untouched, fully cached, zero-copy
        let t1 = &by_tenant[&TenantId(1)];
        assert_eq!(t1.cache_hits, t1.unique);
        for (i, (tid, _)) in batch.iter().enumerate() {
            let (a, b) = (first[i].served().unwrap(), second[i].served().unwrap());
            if *tid == TenantId(1) {
                assert!(Arc::ptr_eq(&a.answer, &b.answer), "tenant 1 must stay warm");
                assert_eq!(b.epoch, 0);
            } else {
                assert!(!b.from_cache);
                assert_eq!(b.epoch, 1);
                assert_eq!(a.potential.values(), b.potential.values());
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_registry_are_fine() {
        let sharded = ShardedServingEngine::new(ShardConfig::default());
        assert!(sharded.is_empty());
        let (answers, stats) = sharded.serve_mixed(&[]);
        assert!(answers.is_empty());
        assert_eq!(stats.arrivals, 0);
        let (answers, stats) = sharded.serve_mixed(&[(
            TenantId(0),
            ServeRequest::marginal(Scope::from_indices(&[0])),
        )]);
        assert_eq!(answers[0].failure(), Some(&PgmError::UnknownTenant(0)));
        assert_eq!(stats.unknown_tenant, 1);
    }

    #[test]
    fn stats_accumulate_per_tenant() {
        let (bns, trees) = fixtures_pair();
        let sharded = two_tenant_engine(&trees, &bns, ShardConfig::default());
        let q = ServeRequest::marginal(Scope::from_indices(&[0, 1]));
        let batch = vec![
            (TenantId(0), q.clone()),
            (TenantId(0), q.clone()),
            (TenantId(1), q.clone()),
        ];
        sharded.serve_mixed(&batch);
        sharded.serve_mixed(&batch); // warm pass: cache hits still count
        let s0 = sharded.tenant(TenantId(0)).unwrap().stats().snapshot();
        let s1 = sharded.tenant(TenantId(1)).unwrap().stats().snapshot();
        assert_eq!(s0.queries, 4, "tenant 0 saw 2 arrivals per batch");
        assert_eq!(s1.queries, 2, "tenant 1 saw 1 arrival per batch");
    }
}
