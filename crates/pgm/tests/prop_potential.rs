//! Property-based tests for the potential algebra.

use peanut_pgm::{Domain, Potential, Scope, Var};
use proptest::prelude::*;

/// Strategy: a domain of `n` variables with cardinalities in 2..=4.
fn domain_strategy(n: usize) -> impl Strategy<Value = Domain> {
    prop::collection::vec(2u32..=4, n).prop_map(|cards| {
        let mut d = Domain::new();
        for (i, c) in cards.into_iter().enumerate() {
            d.add(&format!("v{i}"), c).unwrap();
        }
        d
    })
}

/// Strategy: a random sub-scope of an `n`-variable domain.
fn scope_strategy(n: usize) -> impl Strategy<Value = Scope> {
    prop::collection::vec(prop::bool::ANY, n).prop_map(|mask| {
        Scope::from_iter(
            mask.iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| Var(i as u32)),
        )
    })
}

fn potential_with(d: &Domain, scope: Scope, seed: u64) -> Potential {
    // deterministic pseudo-random positive values
    let mut p = Potential::zeros(scope, d).unwrap();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for v in p.values_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = 0.1 + (state % 1000) as f64 / 1000.0;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Product is commutative.
    #[test]
    fn product_commutes(d in domain_strategy(5), s1 in scope_strategy(5), s2 in scope_strategy(5), seed in 0u64..1000) {
        let f = potential_with(&d, s1, seed);
        let g = potential_with(&d, s2, seed + 1);
        let fg = f.product(&g).unwrap();
        let gf = g.product(&f).unwrap();
        prop_assert!(fg.max_abs_diff(&gf).unwrap() < 1e-9);
    }

    /// Summing a product over everything equals the product of sums when
    /// scopes are disjoint.
    #[test]
    fn total_mass_factorizes_for_disjoint(d in domain_strategy(6), seed in 0u64..1000) {
        let s1 = Scope::from_indices(&[0, 1, 2]);
        let s2 = Scope::from_indices(&[3, 4, 5]);
        let f = potential_with(&d, s1, seed);
        let g = potential_with(&d, s2, seed + 7);
        let fg = f.product(&g).unwrap();
        prop_assert!((fg.sum() - f.sum() * g.sum()).abs() / fg.sum() < 1e-9);
    }

    /// Marginalization order does not matter.
    #[test]
    fn marginalization_commutes(d in domain_strategy(5), s in scope_strategy(5), seed in 0u64..1000) {
        prop_assume!(s.len() >= 2);
        let f = potential_with(&d, s.clone(), seed);
        let a = s.vars()[0];
        let b = s.vars()[1];
        let m1 = f.sum_out(&Scope::singleton(a)).unwrap().sum_out(&Scope::singleton(b)).unwrap();
        let m2 = f.sum_out(&Scope::singleton(b)).unwrap().sum_out(&Scope::singleton(a)).unwrap();
        let m3 = f.sum_out(&Scope::from_iter([a, b])).unwrap();
        prop_assert!(m1.max_abs_diff(&m2).unwrap() < 1e-9);
        prop_assert!(m1.max_abs_diff(&m3).unwrap() < 1e-9);
    }

    /// Total mass is preserved by marginalization.
    #[test]
    fn marginalization_preserves_mass(d in domain_strategy(5), s in scope_strategy(5), keep in scope_strategy(5), seed in 0u64..1000) {
        let f = potential_with(&d, s, seed);
        let m = f.marginalize(&keep).unwrap();
        prop_assert!((f.sum() - m.sum()).abs() / f.sum().max(1.0) < 1e-9);
    }

    /// (f·g) / g == f when g is strictly positive.
    #[test]
    fn divide_inverts_product(d in domain_strategy(5), s1 in scope_strategy(5), s2 in scope_strategy(5), seed in 0u64..1000) {
        let f = potential_with(&d, s1.clone(), seed);
        let g = potential_with(&d, s2, seed + 3);
        let fg = f.product(&g).unwrap();
        let back = fg.divide(&g).unwrap();
        // compare against f expanded onto the union scope
        let ones = Potential::ones(fg.scope().clone(), &d).unwrap();
        let f_exp = f.product(&ones).unwrap();
        prop_assert!(back.max_abs_diff(&f_exp).unwrap() < 1e-9);
    }

    /// Restriction then summation equals summation of the slice.
    #[test]
    fn restrict_is_a_slice(d in domain_strategy(4), s in scope_strategy(4), seed in 0u64..1000) {
        prop_assume!(!s.is_empty());
        let f = potential_with(&d, s.clone(), seed);
        let v = s.vars()[0];
        let card = d.card(v);
        let total: f64 = (0..card).map(|val| f.restrict(v, val).unwrap().sum()).sum();
        prop_assert!((total - f.sum()).abs() / f.sum() < 1e-9);
    }

    /// index_of / assignment_of round trip.
    #[test]
    fn assignment_round_trip(d in domain_strategy(5), s in scope_strategy(5), seed in 0u64..1000) {
        let f = potential_with(&d, s, seed);
        for idx in 0..f.len() {
            let asg = f.assignment_of(idx);
            prop_assert_eq!(f.index_of(&asg), idx);
        }
    }
}
