//! Variable domains: names and cardinalities.

use crate::error::PgmError;
use crate::scope::Scope;
use crate::var::Var;
use crate::Result;
use std::collections::HashMap;

/// The set of variables of a model together with their names and
/// cardinalities.
///
/// A `Domain` is immutable once built and shared by reference across the
/// junction-tree and materialization layers; potentials carry their own
/// cardinality vectors so the hot factor-algebra paths never consult it.
#[derive(Clone, Debug, Default)]
pub struct Domain {
    names: Vec<String>,
    cards: Vec<u32>,
    by_name: HashMap<String, Var>,
}

impl Domain {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a domain of `n` anonymous variables, all with cardinality
    /// `card` (named `x0..x{n-1}`).
    pub fn uniform(n: usize, card: u32) -> Result<Self> {
        let mut d = Domain::new();
        for i in 0..n {
            d.add(&format!("x{i}"), card)?;
        }
        Ok(d)
    }

    /// Creates a domain from `(name, cardinality)` pairs.
    pub fn from_pairs<'a, I: IntoIterator<Item = (&'a str, u32)>>(pairs: I) -> Result<Self> {
        let mut d = Domain::new();
        for (name, card) in pairs {
            d.add(name, card)?;
        }
        Ok(d)
    }

    /// Adds a variable and returns its handle.
    pub fn add(&mut self, name: &str, card: u32) -> Result<Var> {
        if card == 0 {
            return Err(PgmError::InvalidCardinality {
                var: Var(self.names.len() as u32),
                card,
            });
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.cards.push(card);
        self.by_name.insert(name.to_string(), v);
        Ok(v)
    }

    /// Number of variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the domain has no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Cardinality of a variable.
    #[inline]
    pub fn card(&self, v: Var) -> u32 {
        self.cards[v.index()]
    }

    /// Checked cardinality lookup.
    pub fn try_card(&self, v: Var) -> Result<u32> {
        self.cards
            .get(v.index())
            .copied()
            .ok_or(PgmError::UnknownVar(v))
    }

    /// Name of a variable.
    #[inline]
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Variable handle by name.
    pub fn var(&self, name: &str) -> Result<Var> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| PgmError::UnknownName(name.to_string()))
    }

    /// All variables, in index order.
    pub fn all_vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }

    /// The scope containing every variable of the domain.
    pub fn full_scope(&self) -> Scope {
        Scope::from_iter(self.all_vars())
    }

    /// Cardinalities of a scope's variables, in scope order.
    pub fn cards_of(&self, scope: &Scope) -> Vec<u32> {
        scope.iter().map(|v| self.card(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut d = Domain::new();
        let a = d.add("rain", 2).unwrap();
        let b = d.add("sprinkler", 3).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.card(a), 2);
        assert_eq!(d.card(b), 3);
        assert_eq!(d.name(b), "sprinkler");
        assert_eq!(d.var("rain").unwrap(), a);
        assert!(d.var("nope").is_err());
    }

    #[test]
    fn zero_cardinality_rejected() {
        let mut d = Domain::new();
        assert!(matches!(
            d.add("bad", 0),
            Err(PgmError::InvalidCardinality { .. })
        ));
    }

    #[test]
    fn uniform_domain() {
        let d = Domain::uniform(4, 2).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.all_vars().all(|v| d.card(v) == 2));
        assert_eq!(d.full_scope().len(), 4);
    }

    #[test]
    fn cards_of_scope_in_scope_order() {
        let d = Domain::from_pairs([("a", 2), ("b", 3), ("c", 4)]).unwrap();
        let sc = Scope::from_indices(&[2, 0]);
        assert_eq!(d.cards_of(&sc), vec![2, 4]);
    }

    #[test]
    fn try_card_unknown_var() {
        let d = Domain::uniform(2, 2).unwrap();
        assert!(matches!(d.try_card(Var(9)), Err(PgmError::UnknownVar(_))));
    }
}
