//! Random CPTs and ancestral sampling.

use crate::domain::Domain;
use crate::network::BayesianNetwork;
use crate::potential::Potential;
use crate::scope::Scope;
use crate::var::Var;
use crate::Result;
use rand::Rng;

/// Builds a random CPT `P(child | parents)` over the sorted family scope.
///
/// Each conditional distribution is sampled by drawing entries uniformly
/// from `(0.05, 1.0)` and normalizing — bounded away from zero so that
/// divisions during calibration stay well-conditioned.
pub fn random_cpt<R: Rng>(
    domain: &Domain,
    child: Var,
    parents: &[Var],
    rng: &mut R,
) -> Result<Potential> {
    let mut scope = Scope::from_iter(parents.iter().copied());
    scope.insert(child);
    let mut table = Potential::zeros(scope.clone(), domain)?;
    let child_axis = scope.position(child).expect("child in scope");
    let strides = table.strides();
    let child_stride = strides[child_axis] as usize;
    let child_card = domain.card(child) as usize;
    let block = child_stride * child_card;
    let n = table.len();

    // iterate over all "rows" (fixed parent assignment, child varying)
    let mut start = 0usize;
    while start < n {
        for off in 0..child_stride {
            let mut sum = 0.0;
            let mut vals = Vec::with_capacity(child_card);
            for _ in 0..child_card {
                let x: f64 = rng.gen_range(0.05..1.0);
                sum += x;
                vals.push(x);
            }
            for (k, v) in vals.into_iter().enumerate() {
                table.values_mut()[start + off + k * child_stride] = v / sum;
            }
        }
        start += block;
    }
    Ok(table)
}

/// Draws one sample from the network by ancestral sampling, returning one
/// value per variable (indexed by variable).
pub fn ancestral_sample<R: Rng>(bn: &BayesianNetwork, rng: &mut R) -> Vec<u32> {
    let mut values = vec![u32::MAX; bn.n_vars()];
    for v in bn.topological_order() {
        let cpt = bn.cpt(v);
        let scope = cpt.scope();
        // condition the CPT on the already-sampled parents
        let mut cond = cpt.clone();
        for p in scope.iter().filter(|&p| p != v) {
            cond = cond
                .restrict(p, values[p.index()])
                .expect("parents sampled before children");
        }
        let u: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        let mut chosen = cond.len() as u32 - 1;
        for (i, &p) in cond.values().iter().enumerate() {
            acc += p;
            if u < acc {
                chosen = i as u32;
                break;
            }
        }
        values[v.index()] = chosen;
    }
    values
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_cpt_rows_normalized() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Domain::from_pairs([("a", 3), ("b", 2), ("c", 4)]).unwrap();
        let cpt = random_cpt(&d, Var(2), &[Var(0), Var(1)], &mut rng).unwrap();
        let rows = cpt.sum_out(&Scope::singleton(Var(2))).unwrap();
        for &s in rows.values() {
            assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
        }
    }

    #[test]
    fn random_cpt_entries_bounded_away_from_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Domain::from_pairs([("a", 2), ("c", 2)]).unwrap();
        let cpt = random_cpt(&d, Var(1), &[Var(0)], &mut rng).unwrap();
        for &v in cpt.values() {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn ancestral_sampling_matches_marginal_roughly() {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        b.cpt(a, &[], &[&[0.2, 0.8]]).unwrap();
        let bn = b.build().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let ones: usize = (0..n)
            .map(|_| ancestral_sample(&bn, &mut rng)[0] as usize)
            .sum();
        let freq = ones as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.02, "freq {freq}");
    }
}
