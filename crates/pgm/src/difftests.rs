//! Differential suite: arena/lane kernels vs the pre-refactor legacy
//! kernels, asserted **bitwise** (`f64::to_bits`).
//!
//! The flat-arena refactor rewrote every stride-walk kernel (lane-based
//! inner loops, preallocated destination slices, pass-based k-factor
//! product). All of those rewrites were chosen to be bit-identical to the
//! original append-based walks — same per-entry multiplication order, same
//! sequential accumulation per output slot, same Hugin `0/0 = 0` cells.
//! This module proves it against [`crate::potential::legacy`] over random
//! scopes and cardinalities (2..=4, so inner runs routinely have
//! non-multiple-of-4 lengths and exercise the scalar lane tails), plus the
//! singleton/empty-scope and zero-cell edge cases.

use crate::domain::Domain;
use crate::potential::{legacy, product_onto, Potential, Scratch};
use crate::scope::Scope;
use crate::var::Var;
use proptest::prelude::*;

/// A domain of `n` variables with cardinalities in 2..=4 (odd cards give
/// tail lanes).
fn domain_strategy(n: usize) -> impl Strategy<Value = Domain> {
    prop::collection::vec(2u32..=4, n).prop_map(|cards| {
        let mut d = Domain::new();
        for (i, c) in cards.into_iter().enumerate() {
            d.add(&format!("v{i}"), c).unwrap();
        }
        d
    })
}

/// A random sub-scope of an `n`-variable domain (possibly empty).
fn scope_strategy(n: usize) -> impl Strategy<Value = Scope> {
    prop::collection::vec(prop::bool::ANY, n).prop_map(|mask| {
        Scope::from_iter(
            mask.iter()
                .enumerate()
                .filter(|(_, &m)| m)
                .map(|(i, _)| Var(i as u32)),
        )
    })
}

/// Deterministic pseudo-random table; every 7th entry is forced to `0.0`
/// and every 11th to `-0.0` so the divide differential hits the Hugin
/// zero-cell convention (and its sign edge) constantly.
fn potential_with_zeros(d: &Domain, scope: Scope, seed: u64) -> Potential {
    let mut p = Potential::zeros(scope, d).unwrap();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for (i, v) in p.values_mut().iter_mut().enumerate() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *v = if i % 7 == 3 {
            0.0
        } else if i % 11 == 5 {
            -0.0
        } else {
            0.1 + (state % 1000) as f64 / 1000.0
        };
    }
    p
}

fn assert_bit_identical(got: &Potential, want: &Potential) {
    assert_eq!(got.scope(), want.scope());
    assert_eq!(got.cards(), want.cards());
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.values().iter().zip(want.values()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "entry {i} differs: new {g:?} vs legacy {w:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// k-factor product: new pass-based kernel vs legacy per-entry walk.
    #[test]
    fn product_bit_identical(
        d in domain_strategy(6),
        scopes in prop::collection::vec(scope_strategy(6), 1..=4),
        seed in 0u64..10_000,
    ) {
        let pots: Vec<Potential> = scopes
            .into_iter()
            .enumerate()
            .map(|(i, s)| potential_with_zeros(&d, s, seed + i as u64))
            .collect();
        let refs: Vec<&Potential> = pots.iter().collect();
        let mut s1 = Scratch::new();
        let mut s2 = Scratch::new();
        let got = Potential::product_many_in(&refs, &mut s1).unwrap();
        let want = legacy::product_many_in(&refs, &mut s2).unwrap();
        assert_bit_identical(&got, &want);
    }

    /// product_onto writes the same bits into a preallocated span (the
    /// arena slab path).
    #[test]
    fn product_onto_bit_identical(
        d in domain_strategy(6),
        scopes in prop::collection::vec(scope_strategy(6), 1..=4),
        seed in 0u64..10_000,
    ) {
        let pots: Vec<Potential> = scopes
            .into_iter()
            .enumerate()
            .map(|(i, s)| potential_with_zeros(&d, s, seed + i as u64))
            .collect();
        let refs: Vec<&Potential> = pots.iter().collect();
        let mut s = Scratch::new();
        let want = legacy::product_many_in(&refs, &mut s).unwrap();
        let views: Vec<_> = pots.iter().map(|p| p.view()).collect();
        let mut dst = vec![f64::NAN; want.len()]; // poison: every slot must be written
        product_onto(want.scope(), want.cards(), &mut dst, &views, &mut s).unwrap();
        for (g, w) in dst.iter().zip(want.values()) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Marginalization: block-4 accumulator path + lane adds vs scalar walk.
    #[test]
    fn marginalize_bit_identical(
        d in domain_strategy(7),
        s in scope_strategy(7),
        keep in scope_strategy(7),
        seed in 0u64..10_000,
    ) {
        let f = potential_with_zeros(&d, s, seed);
        let mut s1 = Scratch::new();
        let mut s2 = Scratch::new();
        let got = f.marginalize_in(&keep, &mut s1).unwrap();
        let want = legacy::marginalize_in(&f, &keep, &mut s2).unwrap();
        assert_bit_identical(&got, &want);
    }

    /// Division incl. Hugin 0/0 cells and negative zeros: num = f·g has a
    /// zero exactly where g does, so zero-cell divides occur constantly.
    #[test]
    fn divide_bit_identical(
        d in domain_strategy(6),
        s1 in scope_strategy(6),
        s2 in scope_strategy(6),
        seed in 0u64..10_000,
    ) {
        let f = potential_with_zeros(&d, s1, seed);
        let g = potential_with_zeros(&d, s2, seed + 3);
        let num = f.product(&g).unwrap();
        let mut sc1 = Scratch::new();
        let mut sc2 = Scratch::new();
        let got = num.divide_in(&g, &mut sc1).unwrap();
        let want = legacy::divide_in(&num, &g, &mut sc2).unwrap();
        assert_bit_identical(&got, &want);
        prop_assert!(!got.values().iter().any(|v| v.is_nan()));
    }

    /// Evidence restriction slices the same bytes.
    #[test]
    fn restrict_bit_identical(
        d in domain_strategy(5),
        s in scope_strategy(5),
        seed in 0u64..10_000,
        which in 0usize..5,
        val in 0u32..4,
    ) {
        prop_assume!(!s.is_empty());
        let f = potential_with_zeros(&d, s.clone(), seed);
        let v = s.vars()[which % s.len()];
        let value = val % d.card(v);
        let mut s1 = Scratch::new();
        let mut s2 = Scratch::new();
        let got = f.restrict_in(v, value, &mut s1).unwrap();
        let want = legacy::restrict_in(&f, v, value, &mut s2).unwrap();
        assert_bit_identical(&got, &want);
    }
}

#[test]
fn scalar_and_singleton_edges_bit_identical() {
    let mut d = Domain::new();
    d.add("a", 3).unwrap();
    let mut s1 = Scratch::new();
    let mut s2 = Scratch::new();

    // empty factor list → scalar one
    let got = Potential::product_many_in(&[], &mut s1).unwrap();
    let want = legacy::product_many_in(&[], &mut s2).unwrap();
    assert_bit_identical(&got, &want);

    // scalar × scalar and scalar × singleton
    let sc = Potential::scalar(2.5);
    let single = Potential::new(Scope::from_indices(&[0]), vec![3], vec![0.0, -0.0, 4.0]).unwrap();
    for pair in [[&sc, &sc], [&sc, &single], [&single, &single]] {
        let got = Potential::product_many_in(&pair, &mut s1).unwrap();
        let want = legacy::product_many_in(&pair, &mut s2).unwrap();
        assert_bit_identical(&got, &want);
    }

    // marginalize a singleton to the empty scope, and a scalar to anything
    let got = single.marginalize_in(&Scope::empty(), &mut s1).unwrap();
    let want = legacy::marginalize_in(&single, &Scope::empty(), &mut s2).unwrap();
    assert_bit_identical(&got, &want);
    let got = sc
        .marginalize_in(&Scope::from_indices(&[0]), &mut s1)
        .unwrap();
    let want = legacy::marginalize_in(&sc, &Scope::from_indices(&[0]), &mut s2).unwrap();
    assert_bit_identical(&got, &want);

    // scalar / scalar with the 0/0 cell
    let z = Potential::scalar(0.0);
    let got = z.divide_in(&Potential::scalar(0.0), &mut s1).unwrap();
    let want = legacy::divide_in(&z, &Potential::scalar(0.0), &mut s2).unwrap();
    assert_bit_identical(&got, &want);
    assert_eq!(got.values()[0].to_bits(), 0.0f64.to_bits());
}
