//! Discrete Bayesian networks: DAG structure plus one CPT per variable.

use crate::domain::Domain;
use crate::error::PgmError;
use crate::potential::{Potential, Size};
use crate::scope::Scope;
use crate::var::Var;
use crate::Result;

/// A discrete Bayesian network.
///
/// Each variable `v` owns a conditional probability table `P(v | parents(v))`
/// stored as a [`Potential`] over the *family* scope `{v} ∪ parents(v)`.
/// The joint distribution is the product of all CPTs.
#[derive(Clone, Debug)]
pub struct BayesianNetwork {
    domain: Domain,
    parents: Vec<Vec<Var>>,
    cpts: Vec<Potential>,
}

impl BayesianNetwork {
    /// The network's domain.
    #[inline]
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Number of variables.
    #[inline]
    pub fn n_vars(&self) -> usize {
        self.domain.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Parents of a variable (unsorted, insertion order).
    #[inline]
    pub fn parents(&self, v: Var) -> &[Var] {
        &self.parents[v.index()]
    }

    /// The CPT `P(v | parents(v))` over the sorted family scope.
    #[inline]
    pub fn cpt(&self, v: Var) -> &Potential {
        &self.cpts[v.index()]
    }

    /// All CPTs in variable order.
    pub fn cpts(&self) -> impl Iterator<Item = &Potential> {
        self.cpts.iter()
    }

    /// The family scope `{v} ∪ parents(v)`.
    pub fn family(&self, v: Var) -> Scope {
        let mut s = Scope::from_iter(self.parents[v.index()].iter().copied());
        s.insert(v);
        s
    }

    /// All directed edges `(parent, child)`.
    pub fn edges(&self) -> impl Iterator<Item = (Var, Var)> + '_ {
        self.parents.iter().enumerate().flat_map(|(c, ps)| {
            let child = Var(c as u32);
            ps.iter().map(move |&p| (p, child))
        })
    }

    /// Maximum in-degree over all variables.
    pub fn max_in_degree(&self) -> usize {
        self.parents.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of *independent* parameters: Σ_v (α(v) − 1) · Π_p α(p).
    ///
    /// This matches the convention of the bnlearn repository used in the
    /// paper's Table 1.
    pub fn n_parameters(&self) -> Size {
        self.domain
            .all_vars()
            .map(|v| {
                let child = (self.domain.card(v) as u64).saturating_sub(1);
                self.parents[v.index()].iter().fold(child, |acc, &p| {
                    acc.saturating_mul(self.domain.card(p) as u64)
                })
            })
            .fold(0u64, u64::saturating_add)
    }

    /// A topological order of the variables (parents before children).
    pub fn topological_order(&self) -> Vec<Var> {
        let n = self.n_vars();
        let mut indeg = vec![0usize; n];
        let mut children: Vec<Vec<Var>> = vec![Vec::new(); n];
        for (c, ps) in self.parents.iter().enumerate() {
            indeg[c] = ps.len();
            for &p in ps {
                children[p.index()].push(Var(c as u32));
            }
        }
        let mut stack: Vec<Var> = (0..n as u32)
            .map(Var)
            .filter(|v| indeg[v.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in &children[v.index()] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    stack.push(c);
                }
            }
        }
        // On a cyclic parent relation the order is shorter than `n`;
        // `NetworkBuilder::build` turns that into `CycleDetected`.
        order
    }

    /// Validates normalization of every CPT: summing out the child must give
    /// (approximately) the all-ones table over the parents.
    pub fn validate_cpts(&self) -> Result<()> {
        for v in self.domain.all_vars() {
            let summed = self.cpts[v.index()].sum_out(&Scope::singleton(v))?;
            for (row, &s) in summed.values().iter().enumerate() {
                if (s - 1.0).abs() > 1e-6 {
                    return Err(PgmError::UnnormalizedCpt {
                        var: v,
                        row,
                        sum: s,
                    });
                }
            }
        }
        Ok(())
    }
}

/// Incremental constructor for [`BayesianNetwork`].
///
/// ```
/// use peanut_pgm::NetworkBuilder;
///
/// let mut b = NetworkBuilder::new();
/// let rain = b.var("rain", 2);
/// let wet = b.var("wet", 2);
/// b.cpt(rain, &[], &[&[0.8, 0.2]]).unwrap();
/// // rows indexed by the parent assignment (rain=0, rain=1)
/// b.cpt(wet, &[rain], &[&[0.9, 0.1], &[0.2, 0.8]]).unwrap();
/// let bn = b.build().unwrap();
/// assert_eq!(bn.n_edges(), 1);
/// ```
#[derive(Default)]
pub struct NetworkBuilder {
    domain: Domain,
    parents: Vec<Vec<Var>>,
    cpts: Vec<Option<Potential>>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable.
    pub fn var(&mut self, name: &str, card: u32) -> Var {
        let v = self.domain.add(name, card).expect("valid cardinality");
        self.parents.push(Vec::new());
        self.cpts.push(None);
        v
    }

    /// Declares a variable, returning an error on invalid cardinality.
    pub fn try_var(&mut self, name: &str, card: u32) -> Result<Var> {
        let v = self.domain.add(name, card)?;
        self.parents.push(Vec::new());
        self.cpts.push(None);
        Ok(v)
    }

    /// Read access to the domain built so far.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Sets the CPT `P(child | parents)`.
    ///
    /// `rows` is indexed by the parent assignment in the *given* parent order
    /// (last listed parent varies fastest); each row is the distribution over
    /// the child's values. This human-friendly layout is rewritten into the
    /// sorted-scope [`Potential`] layout internally.
    pub fn cpt(&mut self, child: Var, parents: &[Var], rows: &[&[f64]]) -> Result<()> {
        let child_card = self.domain.try_card(child)?;
        let parent_cards: Vec<u32> = parents
            .iter()
            .map(|&p| self.domain.try_card(p))
            .collect::<Result<_>>()?;
        let n_rows: usize = parent_cards.iter().product::<u32>().max(1) as usize;
        if rows.len() != n_rows {
            return Err(PgmError::BadCptScope { var: child });
        }
        let mut scope = Scope::from_iter(parents.iter().copied());
        if scope.contains(child) || scope.len() != parents.len() {
            // child listed as its own parent, or duplicate parents
            return Err(PgmError::BadCptScope { var: child });
        }
        scope.insert(child);
        let mut table = Potential::zeros(scope.clone(), &self.domain)?;

        // walk parent assignments in the *listed* order
        let mut passign = vec![0u32; parents.len()];
        for (row_idx, row) in rows.iter().enumerate() {
            if row.len() != child_card as usize {
                return Err(PgmError::BadCptScope { var: child });
            }
            let mut sum = 0.0;
            for (val, &p) in row.iter().enumerate() {
                sum += p;
                // assemble the full sorted-scope assignment
                let full: Vec<u32> = scope
                    .iter()
                    .map(|sv| {
                        if sv == child {
                            val as u32
                        } else {
                            let pos = parents.iter().position(|&pp| pp == sv).unwrap();
                            passign[pos]
                        }
                    })
                    .collect();
                let idx = table.index_of(&full);
                table.values_mut()[idx] = p;
            }
            if (sum - 1.0).abs() > 1e-6 {
                return Err(PgmError::UnnormalizedCpt {
                    var: child,
                    row: row_idx,
                    sum,
                });
            }
            // odometer over the listed parent order, last fastest
            for ax in (0..parents.len()).rev() {
                passign[ax] += 1;
                if passign[ax] < parent_cards[ax] {
                    break;
                }
                passign[ax] = 0;
            }
        }
        self.parents[child.index()] = parents.to_vec();
        self.cpts[child.index()] = Some(table);
        Ok(())
    }

    /// Sets an already-assembled CPT potential over the family scope.
    pub fn cpt_potential(&mut self, child: Var, parents: &[Var], table: Potential) -> Result<()> {
        let mut scope = Scope::from_iter(parents.iter().copied());
        scope.insert(child);
        if table.scope() != &scope {
            return Err(PgmError::BadCptScope { var: child });
        }
        self.parents[child.index()] = parents.to_vec();
        self.cpts[child.index()] = Some(table);
        Ok(())
    }

    /// Finalizes the network: every variable must have a CPT and the parent
    /// relation must be acyclic.
    pub fn build(self) -> Result<BayesianNetwork> {
        if self.domain.is_empty() {
            return Err(PgmError::EmptyNetwork);
        }
        let mut cpts = Vec::with_capacity(self.cpts.len());
        for (i, c) in self.cpts.into_iter().enumerate() {
            cpts.push(c.ok_or(PgmError::BadCptScope { var: Var(i as u32) })?);
        }
        let bn = BayesianNetwork {
            domain: self.domain,
            parents: self.parents,
            cpts,
        };
        // acyclicity via Kahn completion
        if bn.topological_order().len() != bn.n_vars() {
            return Err(PgmError::CycleDetected);
        }
        bn.validate_cpts()?;
        Ok(bn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sprinkler() -> BayesianNetwork {
        let mut b = NetworkBuilder::new();
        let cloudy = b.var("cloudy", 2);
        let sprinkler = b.var("sprinkler", 2);
        let rain = b.var("rain", 2);
        let wet = b.var("wet", 2);
        b.cpt(cloudy, &[], &[&[0.5, 0.5]]).unwrap();
        b.cpt(sprinkler, &[cloudy], &[&[0.5, 0.5], &[0.9, 0.1]])
            .unwrap();
        b.cpt(rain, &[cloudy], &[&[0.8, 0.2], &[0.2, 0.8]]).unwrap();
        b.cpt(
            wet,
            &[sprinkler, rain],
            &[&[1.0, 0.0], &[0.1, 0.9], &[0.1, 0.9], &[0.01, 0.99]],
        )
        .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_sprinkler() {
        let bn = sprinkler();
        assert_eq!(bn.n_vars(), 4);
        assert_eq!(bn.n_edges(), 4);
        assert_eq!(bn.max_in_degree(), 2);
        // params: 1 + 2*1 + 2*1 + 4*1 = 9
        assert_eq!(bn.n_parameters(), 9);
        bn.validate_cpts().unwrap();
    }

    #[test]
    fn cpt_layout_matches_rows() {
        let bn = sprinkler();
        let wet = bn.domain().var("wet").unwrap();
        let spr = bn.domain().var("sprinkler").unwrap();
        let rain = bn.domain().var("rain").unwrap();
        let cpt = bn.cpt(wet);
        // P(wet=1 | sprinkler=1, rain=0) = 0.9
        let scope = cpt.scope().clone();
        let asg: Vec<u32> = scope
            .iter()
            .map(|v| {
                if v == wet || v == spr {
                    1
                } else if v == rain {
                    0
                } else {
                    unreachable!()
                }
            })
            .collect();
        assert!((cpt.get(&asg) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn topological_order_respects_edges() {
        let bn = sprinkler();
        let order = bn.topological_order();
        let pos: Vec<usize> = bn
            .domain()
            .all_vars()
            .map(|v| order.iter().position(|&o| o == v).unwrap())
            .collect();
        for (p, c) in bn.edges() {
            assert!(pos[p.index()] < pos[c.index()]);
        }
    }

    #[test]
    fn missing_cpt_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        let _b2 = b.var("b", 2);
        b.cpt(a, &[], &[&[0.4, 0.6]]).unwrap();
        assert!(matches!(b.build(), Err(PgmError::BadCptScope { .. })));
    }

    #[test]
    fn unnormalized_row_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        assert!(matches!(
            b.cpt(a, &[], &[&[0.4, 0.4]]),
            Err(PgmError::UnnormalizedCpt { .. })
        ));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        let c = b.var("c", 2);
        b.cpt(a, &[c], &[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        b.cpt(c, &[a], &[&[0.5, 0.5], &[0.5, 0.5]]).unwrap();
        assert!(matches!(b.build(), Err(PgmError::CycleDetected)));
    }

    #[test]
    fn self_parent_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        assert!(b.cpt(a, &[a], &[&[0.5, 0.5], &[0.5, 0.5]]).is_err());
    }

    #[test]
    fn empty_network_rejected() {
        let b = NetworkBuilder::new();
        assert!(matches!(b.build(), Err(PgmError::EmptyNetwork)));
    }

    #[test]
    fn wrong_row_count_rejected() {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        let c = b.var("c", 2);
        b.cpt(a, &[], &[&[0.5, 0.5]]).unwrap();
        assert!(b.cpt(c, &[a], &[&[0.5, 0.5]]).is_err());
    }

    #[test]
    fn family_scope_sorted() {
        let bn = sprinkler();
        let wet = bn.domain().var("wet").unwrap();
        let fam = bn.family(wet);
        assert_eq!(fam.len(), 3);
        assert!(fam.contains(wet));
    }
}
