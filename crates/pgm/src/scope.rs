//! Sorted variable sets with merge-join set algebra.

use crate::var::Var;
use std::fmt;

/// An ordered set of variables: the scope of a potential, clique or
/// separator.
///
/// Internally a sorted, deduplicated `Vec<Var>`; all set operations are
/// linear merge joins, which keeps the hot paths of the message-passing and
/// DP code allocation-light and branch-predictable. Scopes in this workspace
/// are small (bounded by treewidth + query size), so a sorted vector
/// outperforms hash sets.
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Scope {
    vars: Vec<Var>,
}

impl Scope {
    /// The empty scope.
    pub fn empty() -> Self {
        Scope { vars: Vec::new() }
    }

    /// Scope containing a single variable.
    pub fn singleton(v: Var) -> Self {
        Scope { vars: vec![v] }
    }

    /// Builds a scope from any iterator of variables (sorts and dedups).
    /// Also available through the `FromIterator` impl; the inherent method
    /// avoids type annotations at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        let mut vars: Vec<Var> = iter.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        Scope { vars }
    }

    /// Builds a scope from a slice of raw indices (test convenience).
    pub fn from_indices(ix: &[u32]) -> Self {
        Self::from_iter(ix.iter().copied().map(Var))
    }

    /// Number of variables in the scope.
    #[inline]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the scope contains no variables.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The variables in ascending order.
    #[inline]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Iterator over the variables in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, v: Var) -> bool {
        self.vars.binary_search(&v).is_ok()
    }

    /// Position of `v` within the sorted scope, if present.
    #[inline]
    pub fn position(&self, v: Var) -> Option<usize> {
        self.vars.binary_search(&v).ok()
    }

    /// True when every variable of `self` belongs to `other`.
    pub fn is_subset_of(&self, other: &Scope) -> bool {
        let mut it = other.vars.iter();
        'outer: for v in &self.vars {
            for w in it.by_ref() {
                match w.cmp(v) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// True when the scopes share no variable.
    pub fn is_disjoint_from(&self, other: &Scope) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Set union (merge join).
    pub fn union(&self, other: &Scope) -> Scope {
        let mut out = Vec::with_capacity(self.vars.len() + other.vars.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.vars[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.vars[i..]);
        out.extend_from_slice(&other.vars[j..]);
        Scope { vars: out }
    }

    /// Set intersection (merge join).
    pub fn intersect(&self, other: &Scope) -> Scope {
        let mut out = Vec::with_capacity(self.vars.len().min(other.vars.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() && j < other.vars.len() {
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.vars[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        Scope { vars: out }
    }

    /// Set difference `self \ other` (merge join).
    pub fn minus(&self, other: &Scope) -> Scope {
        let mut out = Vec::with_capacity(self.vars.len());
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() {
            if j >= other.vars.len() {
                out.extend_from_slice(&self.vars[i..]);
                break;
            }
            match self.vars[i].cmp(&other.vars[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.vars[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        Scope { vars: out }
    }

    /// Inserts a variable, keeping order; no-op when already present.
    pub fn insert(&mut self, v: Var) {
        if let Err(pos) = self.vars.binary_search(&v) {
            self.vars.insert(pos, v);
        }
    }

    /// Removes a variable when present.
    pub fn remove(&mut self, v: Var) {
        if let Ok(pos) = self.vars.binary_search(&v) {
            self.vars.remove(pos);
        }
    }
}

impl fmt::Debug for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, v) in self.vars.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<Var> for Scope {
    fn from_iter<I: IntoIterator<Item = Var>>(iter: I) -> Self {
        Scope::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a Scope {
    type Item = Var;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Var>>;
    fn into_iter(self) -> Self::IntoIter {
        self.vars.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ix: &[u32]) -> Scope {
        Scope::from_indices(ix)
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let sc = s(&[3, 1, 3, 2, 1]);
        assert_eq!(sc.vars(), &[Var(1), Var(2), Var(3)]);
        assert_eq!(sc.len(), 3);
    }

    #[test]
    fn union_merges() {
        assert_eq!(s(&[1, 3]).union(&s(&[2, 3, 4])), s(&[1, 2, 3, 4]));
        assert_eq!(s(&[]).union(&s(&[5])), s(&[5]));
        assert_eq!(s(&[7]).union(&s(&[])), s(&[7]));
    }

    #[test]
    fn intersect_and_minus() {
        assert_eq!(s(&[1, 2, 3]).intersect(&s(&[2, 3, 4])), s(&[2, 3]));
        assert_eq!(s(&[1, 2, 3]).minus(&s(&[2])), s(&[1, 3]));
        assert_eq!(s(&[1, 2]).minus(&s(&[1, 2])), s(&[]));
        assert!(s(&[1, 2]).intersect(&s(&[3])).is_empty());
    }

    #[test]
    fn subset_and_disjoint() {
        assert!(s(&[2, 3]).is_subset_of(&s(&[1, 2, 3, 4])));
        assert!(!s(&[2, 5]).is_subset_of(&s(&[1, 2, 3, 4])));
        assert!(s(&[]).is_subset_of(&s(&[1])));
        assert!(s(&[1, 2]).is_disjoint_from(&s(&[3, 4])));
        assert!(!s(&[1, 2]).is_disjoint_from(&s(&[2])));
        assert!(s(&[]).is_disjoint_from(&s(&[])));
    }

    #[test]
    fn insert_remove_keep_order() {
        let mut sc = s(&[1, 3]);
        sc.insert(Var(2));
        assert_eq!(sc, s(&[1, 2, 3]));
        sc.insert(Var(2));
        assert_eq!(sc.len(), 3);
        sc.remove(Var(1));
        assert_eq!(sc, s(&[2, 3]));
        sc.remove(Var(9));
        assert_eq!(sc, s(&[2, 3]));
    }

    #[test]
    fn contains_and_position() {
        let sc = s(&[10, 20, 30]);
        assert!(sc.contains(Var(20)));
        assert!(!sc.contains(Var(25)));
        assert_eq!(sc.position(Var(30)), Some(2));
        assert_eq!(sc.position(Var(5)), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(s(&[1, 2]).to_string(), "{x1,x2}");
        assert_eq!(s(&[]).to_string(), "{}");
    }
}
