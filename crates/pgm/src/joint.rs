//! Brute-force inference: the test oracle for the whole workspace.
//!
//! These routines materialize the full joint distribution (guarded by the
//! dense-size limit), so they only run on small networks — exactly what the
//! correctness tests need to validate junction-tree answers bit for bit.

use crate::network::BayesianNetwork;
use crate::potential::Potential;
use crate::scope::Scope;
use crate::Result;

/// The full joint distribution of the network as one dense table.
///
/// Fails with [`PgmError::TableTooLarge`](crate::PgmError::TableTooLarge)
/// when the joint would exceed the dense limit.
pub fn joint_table(bn: &BayesianNetwork) -> Result<Potential> {
    let factors: Vec<&Potential> = bn.cpts().collect();
    Potential::product_many(&factors)
}

/// The exact joint marginal `P(scope)` computed by brute force.
pub fn marginal(bn: &BayesianNetwork, scope: &Scope) -> Result<Potential> {
    joint_table(bn)?.marginalize(scope)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::var::Var;

    fn two_node() -> BayesianNetwork {
        let mut b = NetworkBuilder::new();
        let a = b.var("a", 2);
        let c = b.var("c", 2);
        b.cpt(a, &[], &[&[0.3, 0.7]]).unwrap();
        b.cpt(c, &[a], &[&[0.9, 0.1], &[0.4, 0.6]]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn joint_sums_to_one() {
        let bn = two_node();
        let j = joint_table(&bn).unwrap();
        assert!((j.sum() - 1.0).abs() < 1e-12);
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn joint_matches_hand_computation() {
        let bn = two_node();
        let j = joint_table(&bn).unwrap();
        // P(a=1, c=0) = 0.7 * 0.4 = 0.28
        assert!((j.get(&[1, 0]) - 0.28).abs() < 1e-12);
        // P(a=0, c=0) = 0.3 * 0.9 = 0.27
        assert!((j.get(&[0, 0]) - 0.27).abs() < 1e-12);
    }

    #[test]
    fn marginal_of_child() {
        let bn = two_node();
        let m = marginal(&bn, &Scope::singleton(Var(1))).unwrap();
        // P(c=0) = 0.27 + 0.28 = 0.55
        assert!((m.values()[0] - 0.55).abs() < 1e-12);
        assert!((m.values()[1] - 0.45).abs() < 1e-12);
    }
}
