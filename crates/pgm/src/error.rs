//! Error type shared across the PGM substrate.

use crate::var::Var;
use std::fmt;

/// Errors raised when constructing or manipulating models and potentials.
#[derive(Debug, Clone, PartialEq)]
pub enum PgmError {
    /// A variable index referenced a domain entry that does not exist.
    UnknownVar(Var),
    /// A variable name lookup failed.
    UnknownName(String),
    /// A cardinality of zero (or otherwise invalid) was supplied.
    InvalidCardinality { var: Var, card: u32 },
    /// Two potentials disagree on the cardinality of a shared variable.
    CardinalityMismatch { var: Var, left: u32, right: u32 },
    /// An operation required `sub` to be contained in `sup`.
    ScopeNotContained { sub: String, sup: String },
    /// The requested table would exceed the dense-materialization limit.
    TableTooLarge { entries: u64, limit: u64 },
    /// A CPT row does not sum to one.
    UnnormalizedCpt { var: Var, row: usize, sum: f64 },
    /// Adding an edge would create a directed cycle.
    CycleDetected,
    /// A CPT has the wrong scope (must be {var} ∪ parents).
    BadCptScope { var: Var },
    /// The network has no variables.
    EmptyNetwork,
    /// Generator was asked for an impossible configuration.
    InfeasibleGenerator(String),
    /// A value assignment was out of range for the variable's cardinality.
    ValueOutOfRange { var: Var, value: u32, card: u32 },
    /// A serving request named a tenant no shard is registered for.
    UnknownTenant(u32),
    /// A tenant id was registered twice with a sharded engine.
    DuplicateTenant(u32),
    /// An I/O failure while reading or writing a materialization-store
    /// file (open, read, write, sync).
    StoreIo {
        /// Path of the store file involved.
        path: String,
        /// The underlying I/O error, rendered.
        msg: String,
    },
    /// A materialization-store file failed validation: bad magic, a
    /// checksum mismatch, a truncated section, or a shape that does not
    /// match the tree it is being attached to. Never unsafe, never a
    /// silent wrong answer — the load fails loudly instead.
    CorruptStore {
        /// Path of the store file (or a caller-supplied context label).
        path: String,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A materialization-store file carries a format version this build
    /// does not understand.
    StoreVersion {
        /// Version stamped in the file header.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::UnknownVar(v) => write!(f, "unknown variable {v}"),
            PgmError::UnknownName(n) => write!(f, "unknown variable name {n:?}"),
            PgmError::InvalidCardinality { var, card } => {
                write!(f, "invalid cardinality {card} for {var}")
            }
            PgmError::CardinalityMismatch { var, left, right } => {
                write!(f, "cardinality mismatch for {var}: {left} vs {right}")
            }
            PgmError::ScopeNotContained { sub, sup } => {
                write!(f, "scope {sub} is not contained in {sup}")
            }
            PgmError::TableTooLarge { entries, limit } => {
                write!(f, "table with {entries} entries exceeds limit {limit}")
            }
            PgmError::UnnormalizedCpt { var, row, sum } => {
                write!(f, "CPT for {var} row {row} sums to {sum}, expected 1")
            }
            PgmError::CycleDetected => write!(f, "edge insertion would create a cycle"),
            PgmError::BadCptScope { var } => {
                write!(f, "CPT scope for {var} must equal {{var}} ∪ parents")
            }
            PgmError::EmptyNetwork => write!(f, "network has no variables"),
            PgmError::InfeasibleGenerator(msg) => write!(f, "infeasible generator config: {msg}"),
            PgmError::ValueOutOfRange { var, value, card } => {
                write!(
                    f,
                    "value {value} out of range for {var} with cardinality {card}"
                )
            }
            PgmError::UnknownTenant(t) => write!(f, "no shard registered for tenant {t}"),
            PgmError::DuplicateTenant(t) => write!(f, "tenant {t} is already registered"),
            PgmError::StoreIo { path, msg } => {
                write!(f, "store I/O failure on {path}: {msg}")
            }
            PgmError::CorruptStore { path, detail } => {
                write!(f, "corrupt store file {path}: {detail}")
            }
            PgmError::StoreVersion { found, expected } => {
                write!(
                    f,
                    "store format version {found} is not the supported version {expected}"
                )
            }
        }
    }
}

impl std::error::Error for PgmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_meaningfully() {
        let e = PgmError::CardinalityMismatch {
            var: Var(2),
            left: 2,
            right: 3,
        };
        assert!(e.to_string().contains("x2"));
        assert!(e.to_string().contains("2 vs 3"));
        let e = PgmError::TableTooLarge {
            entries: 100,
            limit: 10,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn store_errors_display_meaningfully() {
        let e = PgmError::StoreIo {
            path: "/tmp/t0-e1.pnut".into(),
            msg: "No such file or directory".into(),
        };
        assert!(e.to_string().contains("/tmp/t0-e1.pnut"));
        let e = PgmError::CorruptStore {
            path: "epoch.pnut".into(),
            detail: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum mismatch"));
        let e = PgmError::StoreVersion {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('1'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&PgmError::CycleDetected);
    }
}
