//! Dense factor tables over discrete variables.
//!
//! A [`Potential`] maps every configuration of its [`Scope`] to a
//! non-negative real. The junction-tree algorithm is, at its heart, a
//! sequence of potential products, marginalizations and divisions; this
//! module implements those with precomputed *stride walks*: adjacent result
//! axes whose operand strides are mutually compatible are coalesced into a
//! single axis, so every kernel runs as an odometer over a handful of outer
//! axes with a tight contiguous (or constant-stride) inner loop — no
//! per-entry index recomputation, no hashing, no per-entry function calls.
//!
//! Every kernel also comes in an `_in` variant taking a [`Scratch`]: a
//! caller-owned bundle of reusable odometer state and recycled value
//! buffers. Serving workers and calibration passes thread one `Scratch`
//! through thousands of factor operations and amortize all transient
//! allocation away; the plain methods delegate to the `_in` forms with a
//! fresh (empty, allocation-free) scratch.
//!
//! Alongside the dense representation, [`table_size`] computes the *symbolic*
//! size of a table over a scope. The paper's cost model (§5.1) and its
//! handling of datasets whose calibration is infeasible (TPC-H, Munin,
//! Barley) only ever need sizes, so everything above this layer can run in a
//! size-only mode that never allocates tables.

use crate::domain::Domain;
use crate::error::PgmError;
use crate::scope::Scope;
use crate::var::Var;
use crate::Result;

/// Symbolic table size (number of entries); saturates at `u64::MAX`.
pub type Size = u64;

/// Number of entries of a table over `scope`, saturating on overflow.
pub fn table_size(scope: &Scope, domain: &Domain) -> Size {
    scope
        .iter()
        .fold(1u64, |acc, v| acc.saturating_mul(domain.card(v) as u64))
}

/// Hard cap on dense materialization: tables beyond this must use the
/// size-only pipeline (mirrors the paper running TPC-H/Munin/Barley
/// uncalibrated).
pub const MAX_DENSE_ENTRIES: u64 = 1 << 26;

/// A dense non-negative real-valued table over the configurations of a
/// sorted variable scope.
///
/// Values are stored row-major with the *last* scope variable varying
/// fastest. The potential is self-contained: it carries the cardinalities of
/// its scope so factor algebra never needs the [`Domain`].
#[derive(Clone, Debug, PartialEq)]
pub struct Potential {
    scope: Scope,
    cards: Vec<u32>,
    values: Vec<f64>,
}

impl Potential {
    /// Builds a potential from explicit values.
    ///
    /// `cards` must align with the scope's sorted variable order and the
    /// value vector length must equal the product of cardinalities.
    pub fn new(scope: Scope, cards: Vec<u32>, values: Vec<f64>) -> Result<Self> {
        if cards.len() != scope.len() {
            return Err(PgmError::BadCptScope {
                var: scope.vars().first().copied().unwrap_or(Var(0)),
            });
        }
        let expected = checked_len(&cards)?;
        if values.len() as u64 != expected {
            return Err(PgmError::TableTooLarge {
                entries: values.len() as u64,
                limit: expected,
            });
        }
        Ok(Potential {
            scope,
            cards,
            values,
        })
    }

    /// Builds a potential over `scope`, reading cardinalities from `domain`,
    /// filled with `fill`.
    pub fn filled(scope: Scope, domain: &Domain, fill: f64) -> Result<Self> {
        let cards = domain.cards_of(&scope);
        let n = checked_len(&cards)?;
        Ok(Potential {
            scope,
            cards,
            values: vec![fill; n as usize],
        })
    }

    /// All-ones potential (multiplicative identity over its scope).
    pub fn ones(scope: Scope, domain: &Domain) -> Result<Self> {
        Self::filled(scope, domain, 1.0)
    }

    /// All-zeros potential (additive identity over its scope).
    pub fn zeros(scope: Scope, domain: &Domain) -> Result<Self> {
        Self::filled(scope, domain, 0.0)
    }

    /// The scalar potential (empty scope) holding `value`.
    pub fn scalar(value: f64) -> Self {
        Potential {
            scope: Scope::empty(),
            cards: Vec::new(),
            values: vec![value],
        }
    }

    /// The potential's scope.
    #[inline]
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Cardinalities aligned with the scope order.
    #[inline]
    pub fn cards(&self) -> &[u32] {
        &self.cards
    }

    /// Raw values, row-major, last scope variable fastest.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Number of table entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the (impossible) zero-entry table; kept for lint symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cardinality of a scope variable.
    pub fn card_of(&self, v: Var) -> Option<u32> {
        self.scope.position(v).map(|p| self.cards[p])
    }

    /// Row-major strides aligned with the scope order.
    pub fn strides(&self) -> Vec<u64> {
        strides_of(&self.cards)
    }

    /// Linear index of a full assignment (aligned with the scope order).
    pub fn index_of(&self, assignment: &[u32]) -> usize {
        debug_assert_eq!(assignment.len(), self.cards.len());
        let strides = self.strides();
        assignment
            .iter()
            .zip(&strides)
            .map(|(&a, &s)| a as u64 * s)
            .sum::<u64>() as usize
    }

    /// The assignment encoded by a linear index.
    pub fn assignment_of(&self, mut idx: usize) -> Vec<u32> {
        let mut out = vec![0u32; self.cards.len()];
        for (k, &c) in self.cards.iter().enumerate().rev() {
            out[k] = (idx % c as usize) as u32;
            idx /= c as usize;
        }
        out
    }

    /// Value at a full assignment.
    pub fn get(&self, assignment: &[u32]) -> f64 {
        self.values[self.index_of(assignment)]
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Scales all entries so they sum to one. No-op on an all-zero table.
    pub fn normalize(&mut self) {
        let s = self.sum();
        if s > 0.0 {
            let inv = 1.0 / s;
            for v in &mut self.values {
                *v *= inv;
            }
        }
    }

    /// Pointwise product of any number of factors.
    ///
    /// The result scope is the union of all input scopes; shared variables
    /// must agree on cardinality. With an empty input list this is the scalar
    /// `1`.
    pub fn product_many(factors: &[&Potential]) -> Result<Potential> {
        Self::product_many_in(factors, &mut Scratch::new())
    }

    /// [`product_many`](Self::product_many) with caller-provided scratch
    /// buffers (odometer state + recycled value storage).
    pub fn product_many_in(factors: &[&Potential], scratch: &mut Scratch) -> Result<Potential> {
        let mut scope = Scope::empty();
        for f in factors {
            scope = scope.union(&f.scope);
        }
        let cards = resolve_cards(&scope, factors)?;
        let total = checked_len(&cards)?;
        let steps: Vec<Vec<u64>> = factors
            .iter()
            .map(|f| steps_into(&scope, f))
            .collect::<Result<_>>()?;
        let walk = Walk::plan(&cards, &steps);
        // the walk visits runs in row-major order covering every output
        // entry exactly once, so the kernels append (no zero-fill pass)
        let mut values = scratch.take_buf_empty(total as usize);

        match factors.len() {
            0 => values.resize(total as usize, 1.0),
            1 => {
                let a = &factors[0].values;
                let sa = walk.inner_steps[0];
                walk.for_each_run(scratch, |_, bases| {
                    let mut oa = bases[0] as usize;
                    if sa == 1 {
                        values.extend_from_slice(&a[oa..oa + walk.inner_len]);
                    } else {
                        for _ in 0..walk.inner_len {
                            values.push(a[oa]);
                            oa += sa as usize;
                        }
                    }
                });
            }
            2 => {
                let a = &factors[0].values;
                let b = &factors[1].values;
                let (sa, sb) = (walk.inner_steps[0], walk.inner_steps[1]);
                walk.for_each_run(scratch, |_, bases| {
                    let (mut oa, mut ob) = (bases[0] as usize, bases[1] as usize);
                    match (sa, sb) {
                        (1, 0) => {
                            let s = b[ob];
                            values.extend(a[oa..oa + walk.inner_len].iter().map(|&x| x * s));
                        }
                        (0, 1) => {
                            let s = a[oa];
                            values.extend(b[ob..ob + walk.inner_len].iter().map(|&x| x * s));
                        }
                        (1, 1) => {
                            values.extend(
                                a[oa..oa + walk.inner_len]
                                    .iter()
                                    .zip(&b[ob..ob + walk.inner_len])
                                    .map(|(&x, &y)| x * y),
                            );
                        }
                        _ => {
                            for _ in 0..walk.inner_len {
                                values.push(a[oa] * b[ob]);
                                oa += sa as usize;
                                ob += sb as usize;
                            }
                        }
                    }
                });
            }
            _ => {
                walk.for_each_run(scratch, |_, bases| {
                    for i in 0..walk.inner_len {
                        let mut prod = 1.0;
                        for (f, (&base, &step)) in
                            factors.iter().zip(bases.iter().zip(&walk.inner_steps))
                        {
                            prod *= f.values[(base + i as u64 * step) as usize];
                        }
                        values.push(prod);
                    }
                });
            }
        }
        debug_assert_eq!(values.len() as u64, total);
        Ok(Potential {
            scope,
            cards,
            values,
        })
    }

    /// Pointwise product with another factor.
    pub fn product(&self, other: &Potential) -> Result<Potential> {
        Potential::product_many(&[self, other])
    }

    /// [`product`](Self::product) with caller-provided scratch.
    pub fn product_in(&self, other: &Potential, scratch: &mut Scratch) -> Result<Potential> {
        Potential::product_many_in(&[self, other], scratch)
    }

    /// Marginalizes (sums) the potential onto `keep ∩ scope`.
    pub fn marginalize(&self, keep: &Scope) -> Result<Potential> {
        self.marginalize_in(keep, &mut Scratch::new())
    }

    /// [`marginalize`](Self::marginalize) with caller-provided scratch.
    ///
    /// Walks the *source* table in row-major order (contiguous reads) while
    /// tracking the target offset through the stride walk; runs whose target
    /// step is 0 collapse into a register accumulation, runs whose target
    /// step is 1 become a contiguous add.
    pub fn marginalize_in(&self, keep: &Scope, scratch: &mut Scratch) -> Result<Potential> {
        let target_scope = self.scope.intersect(keep);
        let positions: Vec<usize> = self
            .scope
            .iter()
            .enumerate()
            .filter(|(_, v)| target_scope.contains(*v))
            .map(|(i, _)| i)
            .collect();
        let t_cards: Vec<u32> = positions.iter().map(|&i| self.cards[i]).collect();
        let total = checked_len(&t_cards)?;
        let t_strides = strides_of(&t_cards);
        // step of each source axis within the target table (0 when summed out)
        let mut steps = vec![0u64; self.scope.len()];
        for (t_axis, &s_axis) in positions.iter().enumerate() {
            steps[s_axis] = t_strides[t_axis];
        }
        let walk = Walk::plan(&self.cards, std::slice::from_ref(&steps));
        let mut values = scratch.take_buf(total as usize);
        let src = &self.values;
        let st = walk.inner_steps[0];
        walk.for_each_run(scratch, |src_pos, bases| {
            let run = &src[src_pos..src_pos + walk.inner_len];
            let mut t = bases[0] as usize;
            match st {
                0 => {
                    values[t] += run.iter().sum::<f64>();
                }
                1 => {
                    for (slot, &v) in values[t..t + walk.inner_len].iter_mut().zip(run) {
                        *slot += v;
                    }
                }
                _ => {
                    for &v in run {
                        values[t] += v;
                        t += st as usize;
                    }
                }
            }
        });
        Ok(Potential {
            scope: target_scope,
            cards: t_cards,
            values,
        })
    }

    /// Sums out the given variables: `marginalize(scope \ vars)`.
    pub fn sum_out(&self, vars: &Scope) -> Result<Potential> {
        self.marginalize(&self.scope.minus(vars))
    }

    /// Pointwise division by a factor whose scope is contained in `self`'s,
    /// with the Hugin convention `0 / 0 = 0`.
    pub fn divide(&self, other: &Potential) -> Result<Potential> {
        self.divide_in(other, &mut Scratch::new())
    }

    /// [`divide`](Self::divide) with caller-provided scratch.
    pub fn divide_in(&self, other: &Potential, scratch: &mut Scratch) -> Result<Potential> {
        if !other.scope.is_subset_of(&self.scope) {
            return Err(PgmError::ScopeNotContained {
                sub: other.scope.to_string(),
                sup: self.scope.to_string(),
            });
        }
        let steps = steps_into(&self.scope, other)?;
        let walk = Walk::plan(&self.cards, std::slice::from_ref(&steps));
        let mut values = scratch.take_buf_empty(self.values.len());
        let src = &self.values;
        let div = &other.values;
        let st = walk.inner_steps[0];
        walk.for_each_run(scratch, |pos, bases| {
            let run = &src[pos..pos + walk.inner_len];
            let mut o = bases[0] as usize;
            if st == 0 {
                let d = div[o];
                values.extend(
                    run.iter()
                        .map(|&v| if d == 0.0 && v == 0.0 { 0.0 } else { v / d }),
                );
            } else {
                for &v in run {
                    let d = div[o];
                    values.push(if d == 0.0 && v == 0.0 { 0.0 } else { v / d });
                    o += st as usize;
                }
            }
        });
        Ok(Potential {
            scope: self.scope.clone(),
            cards: self.cards.clone(),
            values,
        })
    }

    /// Fixes `var = value`, dropping the variable from the scope (evidence
    /// restriction).
    pub fn restrict(&self, var: Var, value: u32) -> Result<Potential> {
        self.restrict_in(var, value, &mut Scratch::new())
    }

    /// [`restrict`](Self::restrict) with caller-provided scratch.
    pub fn restrict_in(&self, var: Var, value: u32, scratch: &mut Scratch) -> Result<Potential> {
        let axis = self.scope.position(var).ok_or(PgmError::UnknownVar(var))?;
        let card = self.cards[axis];
        if value >= card {
            return Err(PgmError::ValueOutOfRange { var, value, card });
        }
        let mut scope = self.scope.clone();
        scope.remove(var);
        let mut cards = self.cards.clone();
        cards.remove(axis);
        let strides = self.strides();
        let stride = strides[axis];
        let mut values = scratch.take_buf_empty(self.values.len() / card as usize);
        // outer: blocks above the axis; inner: contiguous run below it
        let inner = stride as usize;
        let block = inner * card as usize;
        let base = value as u64 * stride;
        let mut start = base as usize;
        while start < self.values.len() {
            values.extend_from_slice(&self.values[start..start + inner]);
            start += block;
        }
        Potential::new(scope, cards, values)
    }

    /// Largest absolute difference between two same-scope potentials.
    pub fn max_abs_diff(&self, other: &Potential) -> Result<f64> {
        if self.scope != other.scope {
            return Err(PgmError::ScopeNotContained {
                sub: other.scope.to_string(),
                sup: self.scope.to_string(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

fn checked_len(cards: &[u32]) -> Result<u64> {
    let mut n: u64 = 1;
    for &c in cards {
        n = n.saturating_mul(c as u64);
        if n > MAX_DENSE_ENTRIES {
            return Err(PgmError::TableTooLarge {
                entries: n,
                limit: MAX_DENSE_ENTRIES,
            });
        }
    }
    Ok(n)
}

fn strides_of(cards: &[u32]) -> Vec<u64> {
    let mut strides = vec![1u64; cards.len()];
    for i in (0..cards.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * cards[i + 1] as u64;
    }
    strides
}

/// For each axis of `result` scope, the stride of that variable inside `f`
/// (zero when `f` does not mention it). Checks cardinality agreement.
fn steps_into(result: &Scope, f: &Potential) -> Result<Vec<u64>> {
    let f_strides = f.strides();
    result
        .iter()
        .map(|v| match f.scope.position(v) {
            Some(p) => Ok(f_strides[p]),
            None => Ok(0),
        })
        .collect()
}

fn resolve_cards(scope: &Scope, factors: &[&Potential]) -> Result<Vec<u32>> {
    let mut cards = Vec::with_capacity(scope.len());
    for v in scope.iter() {
        let mut found: Option<u32> = None;
        for f in factors {
            if let Some(c) = f.card_of(v) {
                match found {
                    None => found = Some(c),
                    Some(prev) if prev != c => {
                        return Err(PgmError::CardinalityMismatch {
                            var: v,
                            left: prev,
                            right: c,
                        })
                    }
                    _ => {}
                }
            }
        }
        cards.push(found.expect("scope var must appear in some factor"));
    }
    Ok(cards)
}

/// Reusable scratch state for the stride-walk kernels.
///
/// Holds the odometer digit/offset vectors and a pool of recycled `f64`
/// buffers. One `Scratch` is single-threaded state: give each worker its
/// own. Creating one is free (no allocation until first use), so the
/// non-`_in` kernel methods just instantiate a fresh one per call.
#[derive(Debug, Default)]
pub struct Scratch {
    digits: Vec<u64>,
    bases: Vec<u64>,
    pool: Vec<Vec<f64>>,
}

impl Scratch {
    /// An empty scratch (allocates nothing).
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Returns a potential's value buffer to the pool so a later kernel call
    /// can reuse the allocation. Call this on intermediates (messages,
    /// superseded clique tables) once they are dead.
    pub fn recycle(&mut self, p: Potential) {
        if p.values.capacity() > 0 && self.pool.len() < 32 {
            self.pool.push(p.values);
        }
    }

    /// Picks the pooled buffer that best fits `len` entries: the smallest
    /// one whose capacity suffices, else the largest available (it will
    /// grow). Best-fit keeps a tiny result from capturing — and carrying
    /// out of the kernel layer — a huge recycled allocation.
    fn pick_buf(&mut self, len: usize) -> Option<Vec<f64>> {
        let mut best: Option<usize> = None;
        for (i, v) in self.pool.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => {
                    let (c, bc) = (v.capacity(), self.pool[b].capacity());
                    if c >= len {
                        bc < len || c < bc
                    } else {
                        bc < len && c > bc
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        best.map(|i| {
            let mut v = self.pool.swap_remove(i);
            v.clear();
            v
        })
    }

    /// A zero-filled buffer of `len` entries, reusing pooled storage.
    fn take_buf(&mut self, len: usize) -> Vec<f64> {
        match self.pick_buf(len) {
            Some(mut v) => {
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// An empty buffer with at least `capacity` reserved, reusing pooled
    /// storage (for kernels that append rather than index).
    fn take_buf_empty(&mut self, capacity: usize) -> Vec<f64> {
        match self.pick_buf(capacity) {
            Some(mut v) => {
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }
}

/// A precomputed stride walk: the row-major iteration space of a table,
/// with axes coalesced wherever every tracked operand's stride is
/// compatible, split into outer odometer axes and one inner run.
///
/// For each operand `op`, visiting result entry `i` (row-major) touches
/// operand offset `base(outer digits) + j · inner_steps[op]` where `j` is
/// the position inside the current inner run.
struct Walk {
    /// Coalesced outer axis cardinalities (outer → inner).
    outer_cards: Vec<u64>,
    /// Per-operand steps along the outer axes: `outer_steps[op][ax]`.
    outer_steps: Vec<Vec<u64>>,
    /// Length of the innermost coalesced run.
    inner_len: usize,
    /// Per-operand step along the inner run.
    inner_steps: Vec<u64>,
}

impl Walk {
    /// Plans the walk over a table with axis cardinalities `cards`, tracking
    /// one offset per operand; `op_steps[op][axis]` is the operand's stride
    /// along each result axis (0 = broadcast).
    fn plan(cards: &[u32], op_steps: &[Vec<u64>]) -> Walk {
        let k = op_steps.len();
        let mut gcards: Vec<u64> = Vec::with_capacity(cards.len());
        let mut gsteps: Vec<Vec<u64>> = vec![Vec::with_capacity(cards.len()); k];
        for (ax, &card32) in cards.iter().enumerate() {
            let card = card32 as u64;
            if card == 1 {
                continue; // unit axes contribute nothing to iteration
            }
            let mergeable = !gcards.is_empty()
                && (0..k)
                    .all(|op| *gsteps[op].last().expect("group open") == op_steps[op][ax] * card);
            if mergeable {
                *gcards.last_mut().expect("group open") *= card;
                for op in 0..k {
                    *gsteps[op].last_mut().expect("group open") = op_steps[op][ax];
                }
            } else {
                gcards.push(card);
                for op in 0..k {
                    gsteps[op].push(op_steps[op][ax]);
                }
            }
        }
        match gcards.pop() {
            Some(inner) => Walk {
                inner_len: inner as usize,
                inner_steps: gsteps
                    .iter_mut()
                    .map(|s| s.pop().expect("aligned"))
                    .collect(),
                outer_cards: gcards,
                outer_steps: gsteps,
            },
            None => Walk {
                inner_len: 1,
                inner_steps: vec![0; k],
                outer_cards: Vec::new(),
                outer_steps: vec![Vec::new(); k],
            },
        }
    }

    /// Invokes `f(run_start, operand_bases)` once per inner run, in
    /// row-major order; `run_start` advances by `inner_len` per call.
    #[inline]
    fn for_each_run(&self, scratch: &mut Scratch, mut f: impl FnMut(usize, &[u64])) {
        let n_outer = self.outer_cards.len();
        let k = self.inner_steps.len();
        scratch.digits.clear();
        scratch.digits.resize(n_outer, 0);
        scratch.bases.clear();
        scratch.bases.resize(k, 0);
        let digits = &mut scratch.digits;
        let bases = &mut scratch.bases;
        let mut pos = 0usize;
        'runs: loop {
            f(pos, bases);
            pos += self.inner_len;
            for ax in (0..n_outer).rev() {
                digits[ax] += 1;
                for (op, base) in bases.iter_mut().enumerate() {
                    *base += self.outer_steps[op][ax];
                }
                if digits[ax] < self.outer_cards[ax] {
                    continue 'runs;
                }
                digits[ax] = 0;
                for (op, base) in bases.iter_mut().enumerate() {
                    *base -= self.outer_steps[op][ax] * self.outer_cards[ax];
                }
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Domain {
        Domain::from_pairs([("a", 2), ("b", 3), ("c", 2)]).unwrap()
    }

    fn pot(d: &Domain, ix: &[u32], vals: &[f64]) -> Potential {
        let scope = Scope::from_indices(ix);
        let cards = d.cards_of(&scope);
        Potential::new(scope, cards, vals.to_vec()).unwrap()
    }

    #[test]
    fn scalar_and_ones() {
        let d = dom();
        let s = Potential::scalar(3.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.sum(), 3.5);
        let o = Potential::ones(Scope::from_indices(&[0, 1]), &d).unwrap();
        assert_eq!(o.len(), 6);
        assert_eq!(o.sum(), 6.0);
    }

    #[test]
    fn index_round_trip() {
        let d = dom();
        let p = Potential::zeros(Scope::from_indices(&[0, 1, 2]), &d).unwrap();
        for idx in 0..p.len() {
            let asg = p.assignment_of(idx);
            assert_eq!(p.index_of(&asg), idx);
        }
    }

    #[test]
    fn product_disjoint_scopes() {
        let d = dom();
        // f(a) = [1, 2], g(c) = [10, 100]
        let f = pot(&d, &[0], &[1.0, 2.0]);
        let g = pot(&d, &[2], &[10.0, 100.0]);
        let fg = f.product(&g).unwrap();
        assert_eq!(fg.scope(), &Scope::from_indices(&[0, 2]));
        // row-major: (a=0,c=0),(a=0,c=1),(a=1,c=0),(a=1,c=1)
        assert_eq!(fg.values(), &[10.0, 100.0, 20.0, 200.0]);
    }

    #[test]
    fn product_shared_var() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]); // f(a,b)
        let g = pot(&d, &[1], &[10., 20., 30.]); // g(b)
        let fg = f.product(&g).unwrap();
        assert_eq!(fg.scope(), f.scope());
        assert_eq!(fg.values(), &[10., 40., 90., 40., 100., 180.]);
    }

    #[test]
    fn product_empty_list_is_scalar_one() {
        let p = Potential::product_many(&[]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.values()[0], 1.0);
    }

    #[test]
    fn product_card_mismatch_rejected() {
        let f = Potential::new(Scope::from_indices(&[1]), vec![2], vec![1., 2.]).unwrap();
        let g = Potential::new(Scope::from_indices(&[1]), vec![3], vec![1., 2., 3.]).unwrap();
        assert!(matches!(
            f.product(&g),
            Err(PgmError::CardinalityMismatch { .. })
        ));
    }

    #[test]
    fn marginalize_sums_axis() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]); // f(a,b)
        let fa = f.marginalize(&Scope::from_indices(&[0])).unwrap();
        assert_eq!(fa.values(), &[6.0, 15.0]);
        let fb = f.marginalize(&Scope::from_indices(&[1])).unwrap();
        assert_eq!(fb.values(), &[5.0, 7.0, 9.0]);
        let f_none = f.marginalize(&Scope::empty()).unwrap();
        assert_eq!(f_none.values(), &[21.0]);
    }

    #[test]
    fn marginalize_keep_extraneous_vars_ignored() {
        let d = dom();
        let f = pot(&d, &[0], &[1., 2.]);
        let m = f.marginalize(&Scope::from_indices(&[0, 2])).unwrap();
        assert_eq!(m.scope(), &Scope::from_indices(&[0]));
        assert_eq!(m.values(), &[1.0, 2.0]);
    }

    #[test]
    fn sum_out_complements_marginalize() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]);
        let s = f.sum_out(&Scope::from_indices(&[1])).unwrap();
        let m = f.marginalize(&Scope::from_indices(&[0])).unwrap();
        assert_eq!(s, m);
    }

    #[test]
    fn divide_with_zero_convention() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 0., 5., 6.]);
        let g = pot(&d, &[1], &[1., 0., 3.]);
        let h = f.divide(&g).unwrap();
        // b=1 column: 0/0 = 0 by convention (entry (a=0,b=1) is 2/0 -> inf? no:
        // convention applies only to 0/0; 2/0 is a modelling error we surface
        // as inf, which tests must never trigger in calibrated trees).
        assert_eq!(h.values()[0], 1.0);
        assert_eq!(h.values()[2], 1.0);
        assert_eq!(h.values()[3], 0.0); // 0/1? index 3 = (a=1,b=0) -> 0/1 = 0
        assert!(h.values()[1].is_infinite()); // 2/0
    }

    #[test]
    fn divide_scope_violation() {
        let d = dom();
        let f = pot(&d, &[1], &[1., 2., 3.]);
        let g = pot(&d, &[0, 1], &[1.; 6]);
        assert!(matches!(
            f.divide(&g),
            Err(PgmError::ScopeNotContained { .. })
        ));
    }

    #[test]
    fn restrict_drops_axis() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]);
        let f0 = f.restrict(Var(0), 0).unwrap();
        assert_eq!(f0.scope(), &Scope::from_indices(&[1]));
        assert_eq!(f0.values(), &[1., 2., 3.]);
        let f1 = f.restrict(Var(1), 2).unwrap();
        assert_eq!(f1.values(), &[3., 6.]);
        assert!(f.restrict(Var(1), 9).is_err());
        assert!(f.restrict(Var(2), 0).is_err());
    }

    #[test]
    fn normalize_scales_to_one() {
        let d = dom();
        let mut f = pot(&d, &[1], &[1., 1., 2.]);
        f.normalize();
        assert!((f.sum() - 1.0).abs() < 1e-12);
        assert_eq!(f.values()[2], 0.5);
        let mut z = pot(&d, &[0], &[0., 0.]);
        z.normalize(); // must not NaN
        assert_eq!(z.values(), &[0., 0.]);
    }

    #[test]
    fn table_size_saturates() {
        let mut dm = Domain::new();
        for i in 0..16 {
            dm.add(&format!("v{i}"), 1 << 16).unwrap();
        }
        let sc = dm.full_scope();
        assert_eq!(table_size(&sc, &dm), u64::MAX);
    }

    #[test]
    fn dense_limit_enforced() {
        let mut dm = Domain::new();
        for i in 0..8 {
            dm.add(&format!("v{i}"), 1000).unwrap();
        }
        let sc = dm.full_scope();
        assert!(matches!(
            Potential::zeros(sc, &dm),
            Err(PgmError::TableTooLarge { .. })
        ));
    }

    #[test]
    fn product_associativity_and_commutativity() {
        let d = dom();
        let f = pot(&d, &[0], &[0.5, 1.5]);
        let g = pot(&d, &[1], &[1., 2., 3.]);
        let h = pot(&d, &[0, 2], &[1., 2., 3., 4.]);
        let p1 = f.product(&g).unwrap().product(&h).unwrap();
        let p2 = h.product(&g).unwrap().product(&f).unwrap();
        assert!(p1.max_abs_diff(&p2).unwrap() < 1e-12);
        let p3 = Potential::product_many(&[&f, &g, &h]).unwrap();
        assert!(p1.max_abs_diff(&p3).unwrap() < 1e-12);
    }

    #[test]
    fn marginalization_commutes_with_product_for_disjoint() {
        // (f * g) marginalized onto f's scope == f * sum(g) when scopes are
        // disjoint.
        let d = dom();
        let f = pot(&d, &[0], &[0.25, 0.75]);
        let g = pot(&d, &[1], &[0.2, 0.3, 0.5]);
        let fg = f.product(&g).unwrap();
        let m = fg.marginalize(f.scope()).unwrap();
        assert!((m.values()[0] - 0.25).abs() < 1e-12);
        assert!((m.values()[1] - 0.75).abs() < 1e-12);
    }
}
