//! Dense factor tables over discrete variables.
//!
//! A [`Potential`] maps every configuration of its [`Scope`] to a
//! non-negative real. The junction-tree algorithm is, at its heart, a
//! sequence of potential products, marginalizations and divisions; this
//! module implements those with precomputed *stride walks*: adjacent result
//! axes whose operand strides are mutually compatible are coalesced into a
//! single axis, so every kernel runs as an odometer over a handful of outer
//! axes with a tight contiguous (or constant-stride) inner loop — no
//! per-entry index recomputation, no hashing, no per-entry function calls.
//!
//! The kernels operate on *views* ([`TableRef`]: a scope, cardinalities and
//! a value slice) rather than owned tables, so the same code runs over a
//! `Potential`'s own buffer or over a span of a contiguous arena slab (the
//! flat junction-tree layout in `peanut-junction`). The slab-writing entry
//! points [`product_onto`] and [`mul_assign_bcast`] take a `&mut [f64]`
//! destination directly. Inner runs with unit or broadcast strides execute
//! as 4-wide `f64` lanes (see `crate::lanes`): manually unrolled on
//! stable, `std::simd` under the non-default nightly-only `simd` feature,
//! both bit-identical to the scalar walk.
//!
//! Every kernel also comes in an `_in` variant taking a [`Scratch`]: a
//! caller-owned bundle of reusable odometer state and recycled value
//! buffers. Serving workers and calibration passes thread one `Scratch`
//! through thousands of factor operations and amortize all transient
//! allocation away; the plain methods delegate to the `_in` forms with a
//! fresh (empty, allocation-free) scratch.
//!
//! Alongside the dense representation, [`table_size`] computes the *symbolic*
//! size of a table over a scope. The paper's cost model (§5.1) and its
//! handling of datasets whose calibration is infeasible (TPC-H, Munin,
//! Barley) only ever need sizes, so everything above this layer can run in a
//! size-only mode that never allocates tables.

use crate::domain::Domain;
use crate::error::PgmError;
use crate::lanes;
use crate::scope::Scope;
use crate::var::Var;
use crate::Result;

/// Symbolic table size (number of entries); saturates at `u64::MAX`.
pub type Size = u64;

/// Number of entries of a table over `scope`, saturating on overflow.
pub fn table_size(scope: &Scope, domain: &Domain) -> Size {
    scope
        .iter()
        .fold(1u64, |acc, v| acc.saturating_mul(domain.card(v) as u64))
}

/// Hard cap on dense materialization: tables beyond this must use the
/// size-only pipeline (mirrors the paper running TPC-H/Munin/Barley
/// uncalibrated).
pub const MAX_DENSE_ENTRIES: u64 = 1 << 26;

/// A dense non-negative real-valued table over the configurations of a
/// sorted variable scope.
///
/// Values are stored row-major with the *last* scope variable varying
/// fastest. The potential is self-contained: it carries the cardinalities of
/// its scope so factor algebra never needs the [`Domain`].
#[derive(Clone, Debug, PartialEq)]
pub struct Potential {
    scope: Scope,
    cards: Vec<u32>,
    values: Vec<f64>,
}

impl Potential {
    /// Builds a potential from explicit values.
    ///
    /// `cards` must align with the scope's sorted variable order and the
    /// value vector length must equal the product of cardinalities.
    pub fn new(scope: Scope, cards: Vec<u32>, values: Vec<f64>) -> Result<Self> {
        if cards.len() != scope.len() {
            return Err(PgmError::BadCptScope {
                var: scope.vars().first().copied().unwrap_or(Var(0)),
            });
        }
        let expected = checked_len(&cards)?;
        if values.len() as u64 != expected {
            return Err(PgmError::TableTooLarge {
                entries: values.len() as u64,
                limit: expected,
            });
        }
        Ok(Potential {
            scope,
            cards,
            values,
        })
    }

    /// Builds a potential over `scope`, reading cardinalities from `domain`,
    /// filled with `fill`.
    pub fn filled(scope: Scope, domain: &Domain, fill: f64) -> Result<Self> {
        let cards = domain.cards_of(&scope);
        let n = checked_len(&cards)?;
        Ok(Potential {
            scope,
            cards,
            values: vec![fill; n as usize],
        })
    }

    /// All-ones potential (multiplicative identity over its scope).
    pub fn ones(scope: Scope, domain: &Domain) -> Result<Self> {
        Self::filled(scope, domain, 1.0)
    }

    /// All-zeros potential (additive identity over its scope).
    pub fn zeros(scope: Scope, domain: &Domain) -> Result<Self> {
        Self::filled(scope, domain, 0.0)
    }

    /// The scalar potential (empty scope) holding `value`.
    pub fn scalar(value: f64) -> Self {
        Potential {
            scope: Scope::empty(),
            cards: Vec::new(),
            values: vec![value],
        }
    }

    /// The potential's scope.
    #[inline]
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// Cardinalities aligned with the scope order.
    #[inline]
    pub fn cards(&self) -> &[u32] {
        &self.cards
    }

    /// Raw values, row-major, last scope variable fastest.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable raw values.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// A borrowed view of this table (the form the kernels operate on).
    #[inline]
    pub fn view(&self) -> TableRef<'_> {
        TableRef {
            scope: &self.scope,
            cards: &self.cards,
            values: &self.values,
        }
    }

    /// Number of table entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for the (impossible) zero-entry table; kept for lint symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cardinality of a scope variable.
    pub fn card_of(&self, v: Var) -> Option<u32> {
        self.scope.position(v).map(|p| self.cards[p])
    }

    /// Row-major strides aligned with the scope order.
    pub fn strides(&self) -> Vec<u64> {
        strides_of(&self.cards)
    }

    /// Linear index of a full assignment (aligned with the scope order).
    pub fn index_of(&self, assignment: &[u32]) -> usize {
        debug_assert_eq!(assignment.len(), self.cards.len());
        let strides = self.strides();
        assignment
            .iter()
            .zip(&strides)
            .map(|(&a, &s)| a as u64 * s)
            .sum::<u64>() as usize
    }

    /// The assignment encoded by a linear index.
    pub fn assignment_of(&self, mut idx: usize) -> Vec<u32> {
        let mut out = vec![0u32; self.cards.len()];
        for (k, &c) in self.cards.iter().enumerate().rev() {
            out[k] = (idx % c as usize) as u32;
            idx /= c as usize;
        }
        out
    }

    /// Value at a full assignment.
    pub fn get(&self, assignment: &[u32]) -> f64 {
        self.values[self.index_of(assignment)]
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Scales all entries so they sum to one. No-op on an all-zero table.
    pub fn normalize(&mut self) {
        let s = self.sum();
        if s > 0.0 {
            let inv = 1.0 / s;
            for v in &mut self.values {
                *v *= inv;
            }
        }
    }

    /// Pointwise product of any number of factors.
    ///
    /// The result scope is the union of all input scopes; shared variables
    /// must agree on cardinality. With an empty input list this is the scalar
    /// `1`.
    pub fn product_many(factors: &[&Potential]) -> Result<Potential> {
        Self::product_many_in(factors, &mut Scratch::new())
    }

    /// [`product_many`](Self::product_many) with caller-provided scratch
    /// buffers (odometer state + recycled value storage).
    pub fn product_many_in(factors: &[&Potential], scratch: &mut Scratch) -> Result<Potential> {
        let views: Vec<TableRef<'_>> = factors.iter().map(|f| f.view()).collect();
        product_many_views(&views, scratch)
    }

    /// Pointwise product with another factor.
    pub fn product(&self, other: &Potential) -> Result<Potential> {
        Potential::product_many(&[self, other])
    }

    /// [`product`](Self::product) with caller-provided scratch.
    pub fn product_in(&self, other: &Potential, scratch: &mut Scratch) -> Result<Potential> {
        product_many_views(&[self.view(), other.view()], scratch)
    }

    /// Marginalizes (sums) the potential onto `keep ∩ scope`.
    pub fn marginalize(&self, keep: &Scope) -> Result<Potential> {
        self.marginalize_in(keep, &mut Scratch::new())
    }

    /// [`marginalize`](Self::marginalize) with caller-provided scratch.
    ///
    /// Walks the *source* table in row-major order (contiguous reads) while
    /// tracking the target offset through the stride walk; runs whose target
    /// step is 0 collapse into a register accumulation, runs whose target
    /// step is 1 become a contiguous add.
    pub fn marginalize_in(&self, keep: &Scope, scratch: &mut Scratch) -> Result<Potential> {
        self.view().marginalize_in(keep, scratch)
    }

    /// Sums out the given variables: `marginalize(scope \ vars)`.
    pub fn sum_out(&self, vars: &Scope) -> Result<Potential> {
        self.marginalize(&self.scope.minus(vars))
    }

    /// Pointwise division by a factor whose scope is contained in `self`'s,
    /// with the Hugin convention `0 / 0 = 0`.
    pub fn divide(&self, other: &Potential) -> Result<Potential> {
        self.divide_in(other, &mut Scratch::new())
    }

    /// [`divide`](Self::divide) with caller-provided scratch.
    pub fn divide_in(&self, other: &Potential, scratch: &mut Scratch) -> Result<Potential> {
        divide_views(self.view(), other.view(), scratch)
    }

    /// Fixes `var = value`, dropping the variable from the scope (evidence
    /// restriction).
    pub fn restrict(&self, var: Var, value: u32) -> Result<Potential> {
        self.restrict_in(var, value, &mut Scratch::new())
    }

    /// [`restrict`](Self::restrict) with caller-provided scratch.
    pub fn restrict_in(&self, var: Var, value: u32, scratch: &mut Scratch) -> Result<Potential> {
        restrict_view(self.view(), var, value, scratch)
    }

    /// Largest absolute difference between two same-scope potentials.
    pub fn max_abs_diff(&self, other: &Potential) -> Result<f64> {
        if self.scope != other.scope {
            return Err(PgmError::ScopeNotContained {
                sub: other.scope.to_string(),
                sup: self.scope.to_string(),
            });
        }
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

/// A borrowed dense table: a scope, its cardinalities and a row-major value
/// slice. This is what the kernels actually consume, so the same code path
/// serves owned [`Potential`]s and spans of a contiguous arena slab (the
/// flat junction-tree layout).
#[derive(Clone, Copy, Debug)]
pub struct TableRef<'a> {
    scope: &'a Scope,
    cards: &'a [u32],
    values: &'a [f64],
}

impl<'a> TableRef<'a> {
    /// Wraps borrowed parts as a table view. `cards` must align with the
    /// scope order and `values.len()` must equal the product of `cards`.
    pub fn new(scope: &'a Scope, cards: &'a [u32], values: &'a [f64]) -> Self {
        debug_assert_eq!(cards.len(), scope.len());
        debug_assert_eq!(
            values.len() as u64,
            cards.iter().fold(1u64, |n, &c| n * c as u64)
        );
        TableRef {
            scope,
            cards,
            values,
        }
    }

    /// The view's scope.
    #[inline]
    pub fn scope(&self) -> &'a Scope {
        self.scope
    }

    /// Cardinalities aligned with the scope order.
    #[inline]
    pub fn cards(&self) -> &'a [u32] {
        self.cards
    }

    /// Raw values, row-major, last scope variable fastest.
    #[inline]
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Number of table entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True for a zero-entry view.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Cardinality of a scope variable.
    pub fn card_of(&self, v: Var) -> Option<u32> {
        self.scope.position(v).map(|p| self.cards[p])
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Copies the view into an owned [`Potential`].
    pub fn to_potential(&self) -> Potential {
        Potential {
            scope: self.scope.clone(),
            cards: self.cards.to_vec(),
            values: self.values.to_vec(),
        }
    }

    /// Marginalizes (sums) the view onto `keep ∩ scope`.
    ///
    /// Source runs whose target step is 0 and whose consecutive runs feed
    /// consecutive target slots are processed four runs at a time with four
    /// independent accumulator chains (`lanes::sum_4_runs`) — same bits,
    /// no cross-run add latency chain.
    pub fn marginalize_in(&self, keep: &Scope, scratch: &mut Scratch) -> Result<Potential> {
        let target_scope = self.scope.intersect(keep);
        let positions: Vec<usize> = self
            .scope
            .iter()
            .enumerate()
            .filter(|(_, v)| target_scope.contains(*v))
            .map(|(i, _)| i)
            .collect();
        let t_cards: Vec<u32> = positions.iter().map(|&i| self.cards[i]).collect();
        let total = checked_len(&t_cards)?;
        let t_strides = strides_of(&t_cards);
        // step of each source axis within the target table (0 when summed out)
        let mut steps = vec![0u64; self.scope.len()];
        for (t_axis, &s_axis) in positions.iter().enumerate() {
            steps[s_axis] = t_strides[t_axis];
        }
        let walk = Walk::plan(self.cards, std::slice::from_ref(&steps));
        let mut values = scratch.take_buf(total as usize);
        let src = self.values;
        let st = walk.inner_steps[0];
        let peelable = st == 0
            && !walk.outer_cards.is_empty()
            && *walk.outer_steps[0].last().expect("outer nonempty") == 1;
        if peelable {
            // Fast path: the innermost outer axis advances the target by 1,
            // so its sweep maps consecutive source runs to consecutive
            // target slots — sum four runs in lock-step. The remaining
            // outer axes run through a manual odometer identical to
            // `for_each_run`'s.
            let c1 = *walk.outer_cards.last().expect("outer nonempty") as usize;
            let inner = walk.inner_len;
            let n_up = walk.outer_cards.len() - 1;
            scratch.digits.clear();
            scratch.digits.resize(n_up, 0);
            let digits = &mut scratch.digits;
            let mut t0: u64 = 0;
            let mut pos = 0usize;
            'sweeps: loop {
                let mut t = t0 as usize;
                let mut c = 0usize;
                while c + 4 <= c1 {
                    let s = lanes::sum_4_runs(&src[pos..pos + 4 * inner], inner);
                    values[t] += s[0];
                    values[t + 1] += s[1];
                    values[t + 2] += s[2];
                    values[t + 3] += s[3];
                    t += 4;
                    c += 4;
                    pos += 4 * inner;
                }
                while c < c1 {
                    values[t] += lanes::seq_sum(&src[pos..pos + inner]);
                    t += 1;
                    c += 1;
                    pos += inner;
                }
                for ax in (0..n_up).rev() {
                    digits[ax] += 1;
                    t0 += walk.outer_steps[0][ax];
                    if digits[ax] < walk.outer_cards[ax] {
                        continue 'sweeps;
                    }
                    digits[ax] = 0;
                    t0 -= walk.outer_steps[0][ax] * walk.outer_cards[ax];
                }
                break;
            }
        } else {
            walk.for_each_run(scratch, |src_pos, bases| {
                let run = &src[src_pos..src_pos + walk.inner_len];
                let mut t = bases[0] as usize;
                match st {
                    0 => {
                        values[t] += lanes::seq_sum(run);
                    }
                    1 => {
                        lanes::add_assign(&mut values[t..t + walk.inner_len], run);
                    }
                    _ => {
                        for &v in run {
                            values[t] += v;
                            t += st as usize;
                        }
                    }
                }
            });
        }
        Ok(Potential {
            scope: target_scope,
            cards: t_cards,
            values,
        })
    }
}

/// Pointwise product of table views; the owned-result form of
/// [`product_onto`]. The result scope is the union of all view scopes.
pub fn product_many_views(factors: &[TableRef<'_>], scratch: &mut Scratch) -> Result<Potential> {
    let mut scope = Scope::empty();
    for f in factors {
        scope = scope.union(f.scope);
    }
    let cards = resolve_cards(&scope, factors)?;
    let total = checked_len(&cards)? as usize;
    // build by appending (the walks tile the output sequentially): unlike
    // `product_onto` into an arena span, a fresh buffer would have to be
    // zero-filled before indexed writes, a pure extra pass
    let mut values = scratch.take_buf_empty(total);
    match factors {
        [] => values.resize(total, 1.0),
        [f] => append_bcast(&mut values, &scope, &cards, *f, scratch)?,
        [a, b] => {
            let steps = vec![
                steps_of(&scope, a.scope, a.cards)?,
                steps_of(&scope, b.scope, b.cards)?,
            ];
            let walk = Walk::plan(&cards, &steps);
            let (av, bv) = (a.values, b.values);
            let (sa, sb) = (walk.inner_steps[0], walk.inner_steps[1]);
            walk.for_each_run(scratch, |pos, bases| {
                debug_assert_eq!(values.len(), pos);
                let (mut oa, mut ob) = (bases[0] as usize, bases[1] as usize);
                match (sa, sb) {
                    (1, 0) => {
                        let s = bv[ob];
                        values.extend(av[oa..oa + walk.inner_len].iter().map(|&v| v * s));
                    }
                    (0, 1) => {
                        let s = av[oa];
                        values.extend(bv[ob..ob + walk.inner_len].iter().map(|&v| s * v));
                    }
                    (1, 1) => {
                        let ar = &av[oa..oa + walk.inner_len];
                        let br = &bv[ob..ob + walk.inner_len];
                        values.extend(ar.iter().zip(br).map(|(&x, &y)| x * y));
                    }
                    _ => {
                        for _ in 0..walk.inner_len {
                            values.push(av[oa] * bv[ob]);
                            oa += sa as usize;
                            ob += sb as usize;
                        }
                    }
                }
            });
        }
        _ => {
            // copy the first factor, then one multiply-assign pass per
            // remaining factor (same left-to-right chain per entry)
            append_bcast(&mut values, &scope, &cards, factors[0], scratch)?;
            for f in &factors[1..] {
                mul_assign_bcast(&scope, &cards, &mut values, *f, scratch)?;
            }
        }
    }
    Ok(Potential {
        scope,
        cards,
        values,
    })
}

/// Appends the broadcast of view `f` over (`scope`, `cards`) onto `values`:
/// the growing twin of [`copy_bcast`] for freshly allocated buffers.
fn append_bcast(
    values: &mut Vec<f64>,
    scope: &Scope,
    cards: &[u32],
    f: TableRef<'_>,
    scratch: &mut Scratch,
) -> Result<()> {
    let steps = steps_of(scope, f.scope, f.cards)?;
    let walk = Walk::plan(cards, std::slice::from_ref(&steps));
    let a = f.values;
    let sa = walk.inner_steps[0];
    walk.for_each_run(scratch, |pos, bases| {
        debug_assert_eq!(values.len(), pos);
        let mut oa = bases[0] as usize;
        match sa {
            0 => values.resize(pos + walk.inner_len, a[oa]),
            1 => values.extend_from_slice(&a[oa..oa + walk.inner_len]),
            _ => {
                for _ in 0..walk.inner_len {
                    values.push(a[oa]);
                    oa += sa as usize;
                }
            }
        }
    });
    Ok(())
}

/// Writes the pointwise product of `factors` into `dst`, a row-major table
/// over (`scope`, `cards`). Every factor scope must be contained in `scope`
/// and agree with `cards` on shared variables. `dst.len()` must equal the
/// product of `cards`. With no factors, `dst` is filled with ones.
///
/// This is the slab entry point: arena calibration multiplies CPTs directly
/// into a clique's span with no intermediate allocation.
pub fn product_onto(
    scope: &Scope,
    cards: &[u32],
    dst: &mut [f64],
    factors: &[TableRef<'_>],
    scratch: &mut Scratch,
) -> Result<()> {
    debug_assert_eq!(
        dst.len() as u64,
        cards.iter().fold(1u64, |n, &c| n * c as u64)
    );
    match factors {
        [] => dst.fill(1.0),
        [f] => copy_bcast(scope, cards, dst, *f, scratch)?,
        [a, b] => {
            let steps = vec![
                steps_of(scope, a.scope, a.cards)?,
                steps_of(scope, b.scope, b.cards)?,
            ];
            let walk = Walk::plan(cards, &steps);
            let (av, bv) = (a.values, b.values);
            let (sa, sb) = (walk.inner_steps[0], walk.inner_steps[1]);
            walk.for_each_run(scratch, |pos, bases| {
                let out = &mut dst[pos..pos + walk.inner_len];
                let (mut oa, mut ob) = (bases[0] as usize, bases[1] as usize);
                match (sa, sb) {
                    (1, 0) => lanes::mul_scalar(out, &av[oa..oa + walk.inner_len], bv[ob]),
                    (0, 1) => lanes::mul_scalar(out, &bv[ob..ob + walk.inner_len], av[oa]),
                    (1, 1) => lanes::mul(
                        out,
                        &av[oa..oa + walk.inner_len],
                        &bv[ob..ob + walk.inner_len],
                    ),
                    _ => {
                        for slot in out {
                            *slot = av[oa] * bv[ob];
                            oa += sa as usize;
                            ob += sb as usize;
                        }
                    }
                }
            });
        }
        _ => {
            // copy the first factor, then one multiply-assign pass per
            // remaining factor: each entry sees the same left-to-right
            // product chain the per-entry walk computed
            copy_bcast(scope, cards, dst, factors[0], scratch)?;
            for f in &factors[1..] {
                mul_assign_bcast(scope, cards, dst, *f, scratch)?;
            }
        }
    }
    Ok(())
}

/// Broadcast-copies view `f` into `dst` over (`scope`, `cards`):
/// `dst[i] = f[project(i)]`.
fn copy_bcast(
    scope: &Scope,
    cards: &[u32],
    dst: &mut [f64],
    f: TableRef<'_>,
    scratch: &mut Scratch,
) -> Result<()> {
    let steps = steps_of(scope, f.scope, f.cards)?;
    let walk = Walk::plan(cards, std::slice::from_ref(&steps));
    let a = f.values;
    let sa = walk.inner_steps[0];
    walk.for_each_run(scratch, |pos, bases| {
        let out = &mut dst[pos..pos + walk.inner_len];
        let mut oa = bases[0] as usize;
        match sa {
            0 => out.fill(a[oa]),
            1 => out.copy_from_slice(&a[oa..oa + walk.inner_len]),
            _ => {
                for slot in out {
                    *slot = a[oa];
                    oa += sa as usize;
                }
            }
        }
    });
    Ok(())
}

/// Multiplies view `f` into `dst` pointwise over (`scope`, `cards`):
/// `dst[i] *= f[project(i)]`. The in-place form arena calibration uses for
/// the Hugin absorption `ψ_to *= m / φ_e` — the clique span is updated in
/// the slab, no replacement table is allocated.
pub fn mul_assign_bcast(
    scope: &Scope,
    cards: &[u32],
    dst: &mut [f64],
    f: TableRef<'_>,
    scratch: &mut Scratch,
) -> Result<()> {
    let steps = steps_of(scope, f.scope, f.cards)?;
    let walk = Walk::plan(cards, std::slice::from_ref(&steps));
    let a = f.values;
    let sa = walk.inner_steps[0];
    walk.for_each_run(scratch, |pos, bases| {
        let out = &mut dst[pos..pos + walk.inner_len];
        let mut oa = bases[0] as usize;
        match sa {
            0 => lanes::mul_assign_scalar(out, a[oa]),
            1 => lanes::mul_assign(out, &a[oa..oa + walk.inner_len]),
            _ => {
                for slot in out {
                    *slot *= a[oa];
                    oa += sa as usize;
                }
            }
        }
    });
    Ok(())
}

/// Pointwise division `num / den` with the Hugin convention `0 / 0 = 0`;
/// `den`'s scope must be contained in `num`'s.
pub fn divide_views(
    num: TableRef<'_>,
    den: TableRef<'_>,
    scratch: &mut Scratch,
) -> Result<Potential> {
    if !den.scope.is_subset_of(num.scope) {
        return Err(PgmError::ScopeNotContained {
            sub: den.scope.to_string(),
            sup: num.scope.to_string(),
        });
    }
    let steps = steps_of(num.scope, den.scope, den.cards)?;
    let walk = Walk::plan(num.cards, std::slice::from_ref(&steps));
    // the walk tiles the output sequentially, so append instead of
    // zero-filling a buffer every run would overwrite anyway
    let mut values = scratch.take_buf_empty(num.values.len());
    let src = num.values;
    let div = den.values;
    let st = walk.inner_steps[0];
    walk.for_each_run(scratch, |pos, bases| {
        debug_assert_eq!(values.len(), pos);
        let run = &src[pos..pos + walk.inner_len];
        let mut o = bases[0] as usize;
        match st {
            0 => {
                let d = div[o];
                if d == 0.0 {
                    // rare: a zero (or negative-zero) broadcast denominator
                    // needs the Hugin 0/0 guard on every cell
                    values.extend(run.iter().map(|&v| lanes::hugin(v, d)));
                } else {
                    // hoisting the d == 0.0 test off the hot path leaves a
                    // pure division stream (bitwise: hugin(v, d) = v / d
                    // whenever d != 0)
                    values.extend(run.iter().map(|&v| v / d));
                }
            }
            1 => {
                let start = values.len();
                values.extend_from_slice(run);
                lanes::div_assign(&mut values[start..], &div[o..o + walk.inner_len]);
            }
            _ => {
                for &v in run {
                    values.push(lanes::hugin(v, div[o]));
                    o += st as usize;
                }
            }
        }
    });
    Ok(Potential {
        scope: num.scope.clone(),
        cards: num.cards.to_vec(),
        values,
    })
}

/// Evidence restriction on a view: fixes `var = value` and drops the axis.
fn restrict_view(
    p: TableRef<'_>,
    var: Var,
    value: u32,
    scratch: &mut Scratch,
) -> Result<Potential> {
    let axis = p.scope.position(var).ok_or(PgmError::UnknownVar(var))?;
    let card = p.cards[axis];
    if value >= card {
        return Err(PgmError::ValueOutOfRange { var, value, card });
    }
    let mut scope = p.scope.clone();
    scope.remove(var);
    let mut cards = p.cards.to_vec();
    cards.remove(axis);
    let strides = strides_of(p.cards);
    let stride = strides[axis];
    let mut values = scratch.take_buf_empty(p.values.len() / card as usize);
    // outer: blocks above the axis; inner: contiguous run below it
    let inner = stride as usize;
    let block = inner * card as usize;
    let base = value as u64 * stride;
    let mut start = base as usize;
    while start < p.values.len() {
        values.extend_from_slice(&p.values[start..start + inner]);
        start += block;
    }
    Potential::new(scope, cards, values)
}

fn checked_len(cards: &[u32]) -> Result<u64> {
    let mut n: u64 = 1;
    for &c in cards {
        n = n.saturating_mul(c as u64);
        if n > MAX_DENSE_ENTRIES {
            return Err(PgmError::TableTooLarge {
                entries: n,
                limit: MAX_DENSE_ENTRIES,
            });
        }
    }
    Ok(n)
}

fn strides_of(cards: &[u32]) -> Vec<u64> {
    let mut strides = vec![1u64; cards.len()];
    for i in (0..cards.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * cards[i + 1] as u64;
    }
    strides
}

/// For each axis of the `result` scope, the stride of that variable inside
/// the table over (`f_scope`, `f_cards`) — zero when the table does not
/// mention it. Errors if `f_scope` is not contained in `result`.
fn steps_of(result: &Scope, f_scope: &Scope, f_cards: &[u32]) -> Result<Vec<u64>> {
    if !f_scope.is_subset_of(result) {
        return Err(PgmError::ScopeNotContained {
            sub: f_scope.to_string(),
            sup: result.to_string(),
        });
    }
    let f_strides = strides_of(f_cards);
    Ok(result
        .iter()
        .map(|v| match f_scope.position(v) {
            Some(p) => f_strides[p],
            None => 0,
        })
        .collect())
}

fn resolve_cards(scope: &Scope, factors: &[TableRef<'_>]) -> Result<Vec<u32>> {
    let mut cards = Vec::with_capacity(scope.len());
    for v in scope.iter() {
        let mut found: Option<u32> = None;
        for f in factors {
            if let Some(c) = f.card_of(v) {
                match found {
                    None => found = Some(c),
                    Some(prev) if prev != c => {
                        return Err(PgmError::CardinalityMismatch {
                            var: v,
                            left: prev,
                            right: c,
                        })
                    }
                    _ => {}
                }
            }
        }
        cards.push(found.expect("scope var must appear in some factor"));
    }
    Ok(cards)
}

/// Reusable scratch state for the stride-walk kernels.
///
/// Holds the odometer digit/offset vectors and a pool of recycled `f64`
/// buffers. One `Scratch` is single-threaded state: give each worker its
/// own. Creating one is free (no allocation until first use), so the
/// non-`_in` kernel methods just instantiate a fresh one per call.
#[derive(Debug, Default)]
pub struct Scratch {
    digits: Vec<u64>,
    bases: Vec<u64>,
    pool: Vec<Vec<f64>>,
}

impl Scratch {
    /// An empty scratch (allocates nothing).
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Returns a potential's value buffer to the pool so a later kernel call
    /// can reuse the allocation. Call this on intermediates (messages,
    /// superseded clique tables) once they are dead.
    pub fn recycle(&mut self, p: Potential) {
        if p.values.capacity() > 0 && self.pool.len() < 32 {
            self.pool.push(p.values);
        }
    }

    /// Picks the pooled buffer that best fits `len` entries: the smallest
    /// one whose capacity suffices, else the largest available (it will
    /// grow). Best-fit keeps a tiny result from capturing — and carrying
    /// out of the kernel layer — a huge recycled allocation.
    fn pick_buf(&mut self, len: usize) -> Option<Vec<f64>> {
        let mut best: Option<usize> = None;
        for (i, v) in self.pool.iter().enumerate() {
            let better = match best {
                None => true,
                Some(b) => {
                    let (c, bc) = (v.capacity(), self.pool[b].capacity());
                    if c >= len {
                        bc < len || c < bc
                    } else {
                        bc < len && c > bc
                    }
                }
            };
            if better {
                best = Some(i);
            }
        }
        best.map(|i| {
            let mut v = self.pool.swap_remove(i);
            v.clear();
            v
        })
    }

    /// A zero-filled buffer of `len` entries, reusing pooled storage.
    fn take_buf(&mut self, len: usize) -> Vec<f64> {
        match self.pick_buf(len) {
            Some(mut v) => {
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    /// An empty buffer with at least `capacity` reserved, reusing pooled
    /// storage (for kernels that append rather than index).
    fn take_buf_empty(&mut self, capacity: usize) -> Vec<f64> {
        match self.pick_buf(capacity) {
            Some(mut v) => {
                v.reserve(capacity);
                v
            }
            None => Vec::with_capacity(capacity),
        }
    }
}

/// A precomputed stride walk: the row-major iteration space of a table,
/// with axes coalesced wherever every tracked operand's stride is
/// compatible, split into outer odometer axes and one inner run.
///
/// For each operand `op`, visiting result entry `i` (row-major) touches
/// operand offset `base(outer digits) + j · inner_steps[op]` where `j` is
/// the position inside the current inner run.
struct Walk {
    /// Coalesced outer axis cardinalities (outer → inner).
    outer_cards: Vec<u64>,
    /// Per-operand steps along the outer axes: `outer_steps[op][ax]`.
    outer_steps: Vec<Vec<u64>>,
    /// Length of the innermost coalesced run.
    inner_len: usize,
    /// Per-operand step along the inner run.
    inner_steps: Vec<u64>,
}

impl Walk {
    /// Plans the walk over a table with axis cardinalities `cards`, tracking
    /// one offset per operand; `op_steps[op][axis]` is the operand's stride
    /// along each result axis (0 = broadcast).
    fn plan(cards: &[u32], op_steps: &[Vec<u64>]) -> Walk {
        let k = op_steps.len();
        let mut gcards: Vec<u64> = Vec::with_capacity(cards.len());
        let mut gsteps: Vec<Vec<u64>> = vec![Vec::with_capacity(cards.len()); k];
        for (ax, &card32) in cards.iter().enumerate() {
            let card = card32 as u64;
            if card == 1 {
                continue; // unit axes contribute nothing to iteration
            }
            let mergeable = !gcards.is_empty()
                && (0..k)
                    .all(|op| *gsteps[op].last().expect("group open") == op_steps[op][ax] * card);
            if mergeable {
                *gcards.last_mut().expect("group open") *= card;
                for op in 0..k {
                    *gsteps[op].last_mut().expect("group open") = op_steps[op][ax];
                }
            } else {
                gcards.push(card);
                for op in 0..k {
                    gsteps[op].push(op_steps[op][ax]);
                }
            }
        }
        match gcards.pop() {
            Some(inner) => Walk {
                inner_len: inner as usize,
                inner_steps: gsteps
                    .iter_mut()
                    .map(|s| s.pop().expect("aligned"))
                    .collect(),
                outer_cards: gcards,
                outer_steps: gsteps,
            },
            None => Walk {
                inner_len: 1,
                inner_steps: vec![0; k],
                outer_cards: Vec::new(),
                outer_steps: vec![Vec::new(); k],
            },
        }
    }

    /// Invokes `f(run_start, operand_bases)` once per inner run, in
    /// row-major order; `run_start` advances by `inner_len` per call.
    #[inline]
    fn for_each_run(&self, scratch: &mut Scratch, mut f: impl FnMut(usize, &[u64])) {
        let n_outer = self.outer_cards.len();
        let k = self.inner_steps.len();
        scratch.digits.clear();
        scratch.digits.resize(n_outer, 0);
        scratch.bases.clear();
        scratch.bases.resize(k, 0);
        let digits = &mut scratch.digits;
        let bases = &mut scratch.bases;
        let mut pos = 0usize;
        'runs: loop {
            f(pos, bases);
            pos += self.inner_len;
            for ax in (0..n_outer).rev() {
                digits[ax] += 1;
                for (op, base) in bases.iter_mut().enumerate() {
                    *base += self.outer_steps[op][ax];
                }
                if digits[ax] < self.outer_cards[ax] {
                    continue 'runs;
                }
                digits[ax] = 0;
                for (op, base) in bases.iter_mut().enumerate() {
                    *base -= self.outer_steps[op][ax] * self.outer_cards[ax];
                }
            }
            return;
        }
    }
}

/// The pre-arena kernels, preserved as the differential baseline.
///
/// These are the append-based stride-walk implementations exactly as they
/// shipped before the flat-arena refactor: no lane primitives, `Vec::push`
/// and `extend` instead of preallocated slice writes. The differential
/// suites run the new kernels against them and assert bitwise identity
/// (`f64::to_bits`). Compiled only for this crate's own tests and under the
/// `legacy-kernels` feature (enabled by the differential suites in the
/// junction, bench and umbrella crates).
#[cfg(any(test, feature = "legacy-kernels"))]
pub mod legacy {
    use super::*;

    /// Original `product_many_in`: append-based stride walk.
    pub fn product_many_in(factors: &[&Potential], scratch: &mut Scratch) -> Result<Potential> {
        let mut scope = Scope::empty();
        for f in factors {
            scope = scope.union(&f.scope);
        }
        let views: Vec<TableRef<'_>> = factors.iter().map(|f| f.view()).collect();
        let cards = resolve_cards(&scope, &views)?;
        let total = checked_len(&cards)?;
        let steps: Vec<Vec<u64>> = factors
            .iter()
            .map(|f| steps_of(&scope, &f.scope, &f.cards))
            .collect::<Result<_>>()?;
        let walk = Walk::plan(&cards, &steps);
        // the walk visits runs in row-major order covering every output
        // entry exactly once, so the kernels append (no zero-fill pass)
        let mut values = scratch.take_buf_empty(total as usize);

        match factors.len() {
            0 => values.resize(total as usize, 1.0),
            1 => {
                let a = &factors[0].values;
                let sa = walk.inner_steps[0];
                walk.for_each_run(scratch, |_, bases| {
                    let mut oa = bases[0] as usize;
                    if sa == 1 {
                        values.extend_from_slice(&a[oa..oa + walk.inner_len]);
                    } else {
                        for _ in 0..walk.inner_len {
                            values.push(a[oa]);
                            oa += sa as usize;
                        }
                    }
                });
            }
            2 => {
                let a = &factors[0].values;
                let b = &factors[1].values;
                let (sa, sb) = (walk.inner_steps[0], walk.inner_steps[1]);
                walk.for_each_run(scratch, |_, bases| {
                    let (mut oa, mut ob) = (bases[0] as usize, bases[1] as usize);
                    match (sa, sb) {
                        (1, 0) => {
                            let s = b[ob];
                            values.extend(a[oa..oa + walk.inner_len].iter().map(|&x| x * s));
                        }
                        (0, 1) => {
                            let s = a[oa];
                            values.extend(b[ob..ob + walk.inner_len].iter().map(|&x| x * s));
                        }
                        (1, 1) => {
                            values.extend(
                                a[oa..oa + walk.inner_len]
                                    .iter()
                                    .zip(&b[ob..ob + walk.inner_len])
                                    .map(|(&x, &y)| x * y),
                            );
                        }
                        _ => {
                            for _ in 0..walk.inner_len {
                                values.push(a[oa] * b[ob]);
                                oa += sa as usize;
                                ob += sb as usize;
                            }
                        }
                    }
                });
            }
            _ => {
                walk.for_each_run(scratch, |_, bases| {
                    for i in 0..walk.inner_len {
                        let mut prod = 1.0;
                        for (f, (&base, &step)) in
                            factors.iter().zip(bases.iter().zip(&walk.inner_steps))
                        {
                            prod *= f.values[(base + i as u64 * step) as usize];
                        }
                        values.push(prod);
                    }
                });
            }
        }
        debug_assert_eq!(values.len() as u64, total);
        Ok(Potential {
            scope,
            cards,
            values,
        })
    }

    /// Original two-factor product.
    pub fn product_in(a: &Potential, b: &Potential, scratch: &mut Scratch) -> Result<Potential> {
        product_many_in(&[a, b], scratch)
    }

    /// Original `marginalize_in`: scalar accumulation chains only.
    pub fn marginalize_in(p: &Potential, keep: &Scope, scratch: &mut Scratch) -> Result<Potential> {
        let target_scope = p.scope.intersect(keep);
        let positions: Vec<usize> = p
            .scope
            .iter()
            .enumerate()
            .filter(|(_, v)| target_scope.contains(*v))
            .map(|(i, _)| i)
            .collect();
        let t_cards: Vec<u32> = positions.iter().map(|&i| p.cards[i]).collect();
        let total = checked_len(&t_cards)?;
        let t_strides = strides_of(&t_cards);
        // step of each source axis within the target table (0 when summed out)
        let mut steps = vec![0u64; p.scope.len()];
        for (t_axis, &s_axis) in positions.iter().enumerate() {
            steps[s_axis] = t_strides[t_axis];
        }
        let walk = Walk::plan(&p.cards, std::slice::from_ref(&steps));
        let mut values = scratch.take_buf(total as usize);
        let src = &p.values;
        let st = walk.inner_steps[0];
        walk.for_each_run(scratch, |src_pos, bases| {
            let run = &src[src_pos..src_pos + walk.inner_len];
            let mut t = bases[0] as usize;
            match st {
                0 => {
                    values[t] += run.iter().sum::<f64>();
                }
                1 => {
                    for (slot, &v) in values[t..t + walk.inner_len].iter_mut().zip(run) {
                        *slot += v;
                    }
                }
                _ => {
                    for &v in run {
                        values[t] += v;
                        t += st as usize;
                    }
                }
            }
        });
        Ok(Potential {
            scope: target_scope,
            cards: t_cards,
            values,
        })
    }

    /// Original `divide_in`: append-based, scalar Hugin division.
    pub fn divide_in(p: &Potential, other: &Potential, scratch: &mut Scratch) -> Result<Potential> {
        if !other.scope.is_subset_of(&p.scope) {
            return Err(PgmError::ScopeNotContained {
                sub: other.scope.to_string(),
                sup: p.scope.to_string(),
            });
        }
        let steps = steps_of(&p.scope, &other.scope, &other.cards)?;
        let walk = Walk::plan(&p.cards, std::slice::from_ref(&steps));
        let mut values = scratch.take_buf_empty(p.values.len());
        let src = &p.values;
        let div = &other.values;
        let st = walk.inner_steps[0];
        walk.for_each_run(scratch, |pos, bases| {
            let run = &src[pos..pos + walk.inner_len];
            let mut o = bases[0] as usize;
            if st == 0 {
                let d = div[o];
                values.extend(
                    run.iter()
                        .map(|&v| if d == 0.0 && v == 0.0 { 0.0 } else { v / d }),
                );
            } else {
                for &v in run {
                    let d = div[o];
                    values.push(if d == 0.0 && v == 0.0 { 0.0 } else { v / d });
                    o += st as usize;
                }
            }
        });
        Ok(Potential {
            scope: p.scope.clone(),
            cards: p.cards.clone(),
            values,
        })
    }

    /// Original `restrict_in`: block-strided contiguous copies.
    pub fn restrict_in(
        p: &Potential,
        var: Var,
        value: u32,
        scratch: &mut Scratch,
    ) -> Result<Potential> {
        let axis = p.scope.position(var).ok_or(PgmError::UnknownVar(var))?;
        let card = p.cards[axis];
        if value >= card {
            return Err(PgmError::ValueOutOfRange { var, value, card });
        }
        let mut scope = p.scope.clone();
        scope.remove(var);
        let mut cards = p.cards.clone();
        cards.remove(axis);
        let strides = p.strides();
        let stride = strides[axis];
        let mut values = scratch.take_buf_empty(p.values.len() / card as usize);
        // outer: blocks above the axis; inner: contiguous run below it
        let inner = stride as usize;
        let block = inner * card as usize;
        let base = value as u64 * stride;
        let mut start = base as usize;
        while start < p.values.len() {
            values.extend_from_slice(&p.values[start..start + inner]);
            start += block;
        }
        Potential::new(scope, cards, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom() -> Domain {
        Domain::from_pairs([("a", 2), ("b", 3), ("c", 2)]).unwrap()
    }

    fn pot(d: &Domain, ix: &[u32], vals: &[f64]) -> Potential {
        let scope = Scope::from_indices(ix);
        let cards = d.cards_of(&scope);
        Potential::new(scope, cards, vals.to_vec()).unwrap()
    }

    #[test]
    fn scalar_and_ones() {
        let d = dom();
        let s = Potential::scalar(3.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s.sum(), 3.5);
        let o = Potential::ones(Scope::from_indices(&[0, 1]), &d).unwrap();
        assert_eq!(o.len(), 6);
        assert_eq!(o.sum(), 6.0);
    }

    #[test]
    fn index_round_trip() {
        let d = dom();
        let p = Potential::zeros(Scope::from_indices(&[0, 1, 2]), &d).unwrap();
        for idx in 0..p.len() {
            let asg = p.assignment_of(idx);
            assert_eq!(p.index_of(&asg), idx);
        }
    }

    #[test]
    fn product_disjoint_scopes() {
        let d = dom();
        // f(a) = [1, 2], g(c) = [10, 100]
        let f = pot(&d, &[0], &[1.0, 2.0]);
        let g = pot(&d, &[2], &[10.0, 100.0]);
        let fg = f.product(&g).unwrap();
        assert_eq!(fg.scope(), &Scope::from_indices(&[0, 2]));
        // row-major: (a=0,c=0),(a=0,c=1),(a=1,c=0),(a=1,c=1)
        assert_eq!(fg.values(), &[10.0, 100.0, 20.0, 200.0]);
    }

    #[test]
    fn product_shared_var() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]); // f(a,b)
        let g = pot(&d, &[1], &[10., 20., 30.]); // g(b)
        let fg = f.product(&g).unwrap();
        assert_eq!(fg.scope(), f.scope());
        assert_eq!(fg.values(), &[10., 40., 90., 40., 100., 180.]);
    }

    #[test]
    fn product_empty_list_is_scalar_one() {
        let p = Potential::product_many(&[]).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.values()[0], 1.0);
    }

    #[test]
    fn product_card_mismatch_rejected() {
        let f = Potential::new(Scope::from_indices(&[1]), vec![2], vec![1., 2.]).unwrap();
        let g = Potential::new(Scope::from_indices(&[1]), vec![3], vec![1., 2., 3.]).unwrap();
        assert!(matches!(
            f.product(&g),
            Err(PgmError::CardinalityMismatch { .. })
        ));
    }

    #[test]
    fn marginalize_sums_axis() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]); // f(a,b)
        let fa = f.marginalize(&Scope::from_indices(&[0])).unwrap();
        assert_eq!(fa.values(), &[6.0, 15.0]);
        let fb = f.marginalize(&Scope::from_indices(&[1])).unwrap();
        assert_eq!(fb.values(), &[5.0, 7.0, 9.0]);
        let f_none = f.marginalize(&Scope::empty()).unwrap();
        assert_eq!(f_none.values(), &[21.0]);
    }

    #[test]
    fn marginalize_keep_extraneous_vars_ignored() {
        let d = dom();
        let f = pot(&d, &[0], &[1., 2.]);
        let m = f.marginalize(&Scope::from_indices(&[0, 2])).unwrap();
        assert_eq!(m.scope(), &Scope::from_indices(&[0]));
        assert_eq!(m.values(), &[1.0, 2.0]);
    }

    #[test]
    fn sum_out_complements_marginalize() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]);
        let s = f.sum_out(&Scope::from_indices(&[1])).unwrap();
        let m = f.marginalize(&Scope::from_indices(&[0])).unwrap();
        assert_eq!(s, m);
    }

    #[test]
    fn divide_with_zero_convention() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 0., 5., 6.]);
        let g = pot(&d, &[1], &[1., 0., 3.]);
        let h = f.divide(&g).unwrap();
        // b=1 column: 0/0 = 0 by convention (entry (a=0,b=1) is 2/0 -> inf? no:
        // convention applies only to 0/0; 2/0 is a modelling error we surface
        // as inf, which tests must never trigger in calibrated trees).
        assert_eq!(h.values()[0], 1.0);
        assert_eq!(h.values()[2], 1.0);
        assert_eq!(h.values()[3], 0.0); // 0/1? index 3 = (a=1,b=0) -> 0/1 = 0
        assert!(h.values()[1].is_infinite()); // 2/0
    }

    #[test]
    fn divide_zero_cells_match_legacy_bitwise() {
        // Zero-cell sweep of the Hugin convention across kernel generations:
        // 0/0, x/0 (inf error path), 0/x and negative zeros, on runs long
        // enough to cover full 4-lanes plus a scalar tail.
        let d = Domain::from_pairs([("a", 3), ("b", 5)]).unwrap();
        let scope_ab = Scope::from_indices(&[0, 1]);
        let scope_b = Scope::from_indices(&[1]);
        let num = Potential::new(
            scope_ab.clone(),
            d.cards_of(&scope_ab),
            vec![
                0.0, 2.0, 0.0, -0.0, 1.0, //
                0.5, 0.0, 3.0, 0.0, -0.0, //
                0.0, 0.0, 0.0, 7.0, 2.0,
            ],
        )
        .unwrap();
        // same-scope division (unit-stride lane path)
        let den_full = Potential::new(
            scope_ab.clone(),
            d.cards_of(&scope_ab),
            vec![
                0.0, 0.0, 4.0, 0.0, -0.0, //
                2.0, 0.0, 0.0, 5.0, 0.0, //
                -0.0, 1.0, 0.0, 0.0, 4.0,
            ],
        )
        .unwrap();
        // broadcast division (scalar-denominator lane path)
        let den_b = Potential::new(
            scope_b.clone(),
            d.cards_of(&scope_b),
            vec![0.0, 2.0, 0.0, -0.0, 1.0],
        )
        .unwrap();
        let mut s = Scratch::new();
        for den in [&den_full, &den_b] {
            let got = num.divide_in(den, &mut s).unwrap();
            let want = legacy::divide_in(&num, den, &mut s).unwrap();
            for (g, w) in got.values().iter().zip(want.values()) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
            // 0/0 cells are exactly +0.0, never NaN
            for (&n, i) in num.values().iter().zip(0..) {
                let dv = if den.len() == num.len() {
                    den.values()[i]
                } else {
                    den.values()[i % 5]
                };
                if n == 0.0 && dv == 0.0 {
                    assert_eq!(got.values()[i].to_bits(), 0.0f64.to_bits());
                }
            }
            assert!(!got.values().iter().any(|v| v.is_nan()));
        }
        // x/0 with x != 0 still surfaces as inf in both generations
        let inf_new = num.divide(&den_b).unwrap();
        assert!(inf_new.values().iter().any(|v| v.is_infinite()));
    }

    #[test]
    fn divide_scope_violation() {
        let d = dom();
        let f = pot(&d, &[1], &[1., 2., 3.]);
        let g = pot(&d, &[0, 1], &[1.; 6]);
        assert!(matches!(
            f.divide(&g),
            Err(PgmError::ScopeNotContained { .. })
        ));
    }

    #[test]
    fn restrict_drops_axis() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]);
        let f0 = f.restrict(Var(0), 0).unwrap();
        assert_eq!(f0.scope(), &Scope::from_indices(&[1]));
        assert_eq!(f0.values(), &[1., 2., 3.]);
        let f1 = f.restrict(Var(1), 2).unwrap();
        assert_eq!(f1.values(), &[3., 6.]);
        assert!(f.restrict(Var(1), 9).is_err());
        assert!(f.restrict(Var(2), 0).is_err());
    }

    #[test]
    fn normalize_scales_to_one() {
        let d = dom();
        let mut f = pot(&d, &[1], &[1., 1., 2.]);
        f.normalize();
        assert!((f.sum() - 1.0).abs() < 1e-12);
        assert_eq!(f.values()[2], 0.5);
        let mut z = pot(&d, &[0], &[0., 0.]);
        z.normalize(); // must not NaN
        assert_eq!(z.values(), &[0., 0.]);
    }

    #[test]
    fn table_size_saturates() {
        let mut dm = Domain::new();
        for i in 0..16 {
            dm.add(&format!("v{i}"), 1 << 16).unwrap();
        }
        let sc = dm.full_scope();
        assert_eq!(table_size(&sc, &dm), u64::MAX);
    }

    #[test]
    fn dense_limit_enforced() {
        let mut dm = Domain::new();
        for i in 0..8 {
            dm.add(&format!("v{i}"), 1000).unwrap();
        }
        let sc = dm.full_scope();
        assert!(matches!(
            Potential::zeros(sc, &dm),
            Err(PgmError::TableTooLarge { .. })
        ));
    }

    #[test]
    fn product_associativity_and_commutativity() {
        let d = dom();
        let f = pot(&d, &[0], &[0.5, 1.5]);
        let g = pot(&d, &[1], &[1., 2., 3.]);
        let h = pot(&d, &[0, 2], &[1., 2., 3., 4.]);
        let p1 = f.product(&g).unwrap().product(&h).unwrap();
        let p2 = h.product(&g).unwrap().product(&f).unwrap();
        assert!(p1.max_abs_diff(&p2).unwrap() < 1e-12);
        let p3 = Potential::product_many(&[&f, &g, &h]).unwrap();
        assert!(p1.max_abs_diff(&p3).unwrap() < 1e-12);
    }

    #[test]
    fn marginalization_commutes_with_product_for_disjoint() {
        // (f * g) marginalized onto f's scope == f * sum(g) when scopes are
        // disjoint.
        let d = dom();
        let f = pot(&d, &[0], &[0.25, 0.75]);
        let g = pot(&d, &[1], &[0.2, 0.3, 0.5]);
        let fg = f.product(&g).unwrap();
        let m = fg.marginalize(f.scope()).unwrap();
        assert!((m.values()[0] - 0.25).abs() < 1e-12);
        assert!((m.values()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn product_onto_matches_product_many() {
        let d = dom();
        let f = pot(&d, &[0], &[0.5, 1.5]);
        let g = pot(&d, &[1], &[1., 2., 3.]);
        let h = pot(&d, &[0, 2], &[1., 2., 3., 4.]);
        let mut s = Scratch::new();
        let want = Potential::product_many_in(&[&f, &g, &h], &mut s).unwrap();
        let mut dst = vec![0.0; want.len()];
        product_onto(
            want.scope(),
            want.cards(),
            &mut dst,
            &[f.view(), g.view(), h.view()],
            &mut s,
        )
        .unwrap();
        for (a, b) in dst.iter().zip(want.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // no factors: multiplicative identity
        let mut ones = vec![0.0; 6];
        product_onto(
            &Scope::from_indices(&[0, 1]),
            &d.cards_of(&Scope::from_indices(&[0, 1])),
            &mut ones,
            &[],
            &mut s,
        )
        .unwrap();
        assert!(ones.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn mul_assign_bcast_matches_product() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]);
        let g = pot(&d, &[1], &[10., 20., 30.]);
        let mut s = Scratch::new();
        let want = f.product_in(&g, &mut s).unwrap();
        let mut dst = f.values().to_vec();
        mul_assign_bcast(f.scope(), f.cards(), &mut dst, g.view(), &mut s).unwrap();
        for (a, b) in dst.iter().zip(want.values()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn product_onto_rejects_uncontained_factor() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1.; 6]);
        let mut dst = vec![0.0; 2];
        let scope_a = Scope::from_indices(&[0]);
        let err = product_onto(&scope_a, &[2], &mut dst, &[f.view()], &mut Scratch::new());
        assert!(matches!(err, Err(PgmError::ScopeNotContained { .. })));
    }

    #[test]
    fn view_round_trip_is_bitwise() {
        let d = dom();
        let f = pot(&d, &[0, 1], &[1., 2., 3., 4., 5., 6.]);
        let v = f.view();
        assert_eq!(v.len(), 6);
        assert_eq!(v.sum(), f.sum());
        assert_eq!(v.card_of(Var(1)), Some(3));
        let back = v.to_potential();
        assert_eq!(back, f);
    }
}
