#![cfg_attr(feature = "simd", feature(portable_simd))]
#![forbid(unsafe_code)]
//! # peanut-pgm
//!
//! Discrete probabilistic-graphical-model substrate for the PEANUT
//! reproduction (Ciaperoni et al., *Workload-Aware Materialization of
//! Junction Trees*, EDBT 2022).
//!
//! This crate provides everything the junction-tree and materialization
//! layers depend on:
//!
//! * [`Var`], [`Domain`], [`Scope`] — typed variables, cardinalities, and
//!   sorted variable sets with merge-join set algebra;
//! * [`Potential`] — dense factor tables over a scope with product,
//!   marginalization, division, normalization and evidence restriction;
//! * [`table_size`] — the *symbolic* size of a table over a scope, used by
//!   the size-only (uncalibrated) evaluation mode that mirrors how the paper
//!   handles TPC-H, Munin and Barley;
//! * [`BayesianNetwork`] — a directed acyclic model with one CPT per
//!   variable, validation, topological utilities and ancestral sampling;
//! * [`joint`] — brute-force joint/marginal computation used as the test
//!   oracle throughout the workspace;
//! * [`generate`] — seeded random-network generators (locality-window DAGs)
//!   that the `peanut-datasets` crate parameterizes to match the paper's
//!   Table 1 statistics;
//! * [`fixtures`] — small hand-built networks, including the running example
//!   of the paper's Figure 1;
//! * [`io`] — plain-text model serialization, so users can export the
//!   synthetic datasets or import their own networks.

#[cfg(test)]
mod difftests;
pub mod domain;
pub mod error;
pub mod fixtures;
pub mod generate;
pub mod io;
pub mod joint;
mod lanes;
pub mod network;
pub mod potential;
pub mod sampling;
pub mod scope;
pub mod var;

pub use domain::Domain;
pub use error::PgmError;
pub use network::{BayesianNetwork, NetworkBuilder};
pub use potential::{
    divide_views, mul_assign_bcast, product_many_views, product_onto, table_size, Potential,
    Scratch, Size, TableRef,
};
pub use scope::Scope;
pub use var::Var;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, PgmError>;
