//! Plain-text model serialization (a BIF-inspired format).
//!
//! Lets users export the synthetic benchmark networks and import their own
//! models (e.g. bnlearn networks converted offline). The format is
//! line-oriented and diff-friendly:
//!
//! ```text
//! network my_model
//! variable rain 2
//! variable wet 2
//! cpt rain |
//! 0.8 0.2
//! cpt wet | rain
//! 0.9 0.1
//! 0.2 0.8
//! end
//! ```
//!
//! `cpt <child> | <parents…>` is followed by one row per parent assignment
//! (listed order, last parent varying fastest), each row a distribution over
//! the child's values — the same layout [`NetworkBuilder::cpt`] accepts.

use crate::error::PgmError;
use crate::network::{BayesianNetwork, NetworkBuilder};
use crate::var::Var;
use crate::Result;
use std::io::{BufRead, Write};

/// Serializes a network to the text format.
pub fn write_network<W: Write>(
    bn: &BayesianNetwork,
    name: &str,
    out: &mut W,
) -> std::io::Result<()> {
    writeln!(out, "network {name}")?;
    let d = bn.domain();
    for v in d.all_vars() {
        writeln!(out, "variable {} {}", d.name(v), d.card(v))?;
    }
    for v in d.all_vars() {
        let parents = bn.parents(v);
        let pnames: Vec<&str> = parents.iter().map(|&p| d.name(p)).collect();
        writeln!(out, "cpt {} | {}", d.name(v), pnames.join(" "))?;
        // rows over listed parent order, last fastest; read entries from the
        // sorted-scope potential by assembling full assignments
        let cpt = bn.cpt(v);
        let scope = cpt.scope();
        let child_card = d.card(v);
        let parent_cards: Vec<u32> = parents.iter().map(|&p| d.card(p)).collect();
        let n_rows: usize = parent_cards.iter().product::<u32>().max(1) as usize;
        let mut passign = vec![0u32; parents.len()];
        for _ in 0..n_rows {
            let mut row = Vec::with_capacity(child_card as usize);
            for val in 0..child_card {
                let full: Vec<u32> = scope
                    .iter()
                    .map(|sv| {
                        if sv == v {
                            val
                        } else {
                            let pos = parents.iter().position(|&pp| pp == sv).expect("parent");
                            passign[pos]
                        }
                    })
                    .collect();
                row.push(format!("{}", cpt.get(&full)));
            }
            writeln!(out, "{}", row.join(" "))?;
            for ax in (0..parents.len()).rev() {
                passign[ax] += 1;
                if passign[ax] < parent_cards[ax] {
                    break;
                }
                passign[ax] = 0;
            }
        }
    }
    writeln!(out, "end")
}

/// Parses a network from the text format.
pub fn read_network<R: BufRead>(input: &mut R) -> Result<BayesianNetwork> {
    let mut lines = Vec::new();
    for l in input.lines() {
        let l = l.map_err(|e| PgmError::UnknownName(format!("io error: {e}")))?;
        let t = l.trim().to_string();
        if !t.is_empty() && !t.starts_with('#') {
            lines.push(t);
        }
    }
    let mut it = lines.into_iter().peekable();
    let header = it
        .next()
        .ok_or_else(|| PgmError::UnknownName("empty model file".into()))?;
    if !header.starts_with("network ") {
        return Err(PgmError::UnknownName(format!(
            "expected 'network <name>', got {header:?}"
        )));
    }

    let mut b = NetworkBuilder::new();
    // variables
    while it.peek().is_some_and(|l| l.starts_with("variable ")) {
        let line = it.next().expect("peeked");
        let mut parts = line.split_whitespace();
        let _kw = parts.next();
        let name = parts
            .next()
            .ok_or_else(|| PgmError::UnknownName("variable line missing name".into()))?;
        let card: u32 = parts
            .next()
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| PgmError::UnknownName(format!("bad cardinality on {line:?}")))?;
        b.try_var(name, card)?;
    }
    // CPTs
    loop {
        let Some(line) = it.next() else {
            return Err(PgmError::UnknownName("missing 'end'".into()));
        };
        if line == "end" {
            break;
        }
        let Some(rest) = line.strip_prefix("cpt ") else {
            return Err(PgmError::UnknownName(format!(
                "expected 'cpt', got {line:?}"
            )));
        };
        let (child_name, parent_part) = rest
            .split_once('|')
            .ok_or_else(|| PgmError::UnknownName(format!("cpt line missing '|': {line:?}")))?;
        let child = b.domain().var(child_name.trim())?;
        let parents: Vec<Var> = parent_part
            .split_whitespace()
            .map(|n| b.domain().var(n))
            .collect::<Result<_>>()?;
        let n_rows: usize = parents
            .iter()
            .map(|&p| b.domain().card(p) as usize)
            .product::<usize>()
            .max(1);
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let Some(row_line) = it.next() else {
                return Err(PgmError::UnknownName(format!(
                    "cpt {child_name}: expected {n_rows} rows"
                )));
            };
            let row: Vec<f64> = row_line
                .split_whitespace()
                .map(|t| {
                    t.parse::<f64>()
                        .map_err(|_| PgmError::UnknownName(format!("bad number {t:?}")))
                })
                .collect::<Result<_>>()?;
            rows.push(row);
        }
        let row_refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        b.cpt(child, &parents, &row_refs)?;
    }
    b.build()
}

/// Saves a network to a file.
pub fn save_to_path(bn: &BayesianNetwork, name: &str, path: &std::path::Path) -> Result<()> {
    let mut f = std::io::BufWriter::new(
        std::fs::File::create(path)
            .map_err(|e| PgmError::UnknownName(format!("create {path:?}: {e}")))?,
    );
    write_network(bn, name, &mut f).map_err(|e| PgmError::UnknownName(format!("write: {e}")))
}

/// Loads a network from a file.
pub fn load_from_path(path: &std::path::Path) -> Result<BayesianNetwork> {
    let f = std::fs::File::open(path)
        .map_err(|e| PgmError::UnknownName(format!("open {path:?}: {e}")))?;
    read_network(&mut std::io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures;
    use crate::joint;

    fn round_trip(bn: &BayesianNetwork) -> BayesianNetwork {
        let mut buf = Vec::new();
        write_network(bn, "t", &mut buf).unwrap();
        read_network(&mut std::io::Cursor::new(buf)).unwrap()
    }

    #[test]
    fn round_trips_preserve_distribution() {
        for bn in [
            fixtures::sprinkler(),
            fixtures::asia(),
            fixtures::figure1(),
            fixtures::chain(6, 3, 9),
        ] {
            let back = round_trip(&bn);
            assert_eq!(back.n_vars(), bn.n_vars());
            assert_eq!(back.n_edges(), bn.n_edges());
            let ja = joint::joint_table(&bn).unwrap();
            let jb = joint::joint_table(&back).unwrap();
            assert!(ja.max_abs_diff(&jb).unwrap() < 1e-9);
        }
    }

    #[test]
    fn names_and_cards_preserved() {
        let bn = fixtures::asia();
        let back = round_trip(&bn);
        for v in bn.domain().all_vars() {
            assert_eq!(bn.domain().name(v), back.domain().name(v));
            assert_eq!(bn.domain().card(v), back.domain().card(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\nnetwork t\nvariable a 2\n\ncpt a |\n0.25 0.75\nend\n";
        let bn = read_network(&mut std::io::Cursor::new(text)).unwrap();
        assert_eq!(bn.n_vars(), 1);
        assert!((bn.cpt(crate::Var(0)).values()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for text in [
            "",                                               // empty
            "nonsense",                                       // bad header
            "network t\nvariable a two\nend",                 // bad cardinality
            "network t\nvariable a 2\ncpt a |\n0.5 0.6\nend", // unnormalized
            "network t\nvariable a 2\ncpt b |\n1 0\nend",     // unknown var
            "network t\nvariable a 2\ncpt a |\nend",          // missing row
            "network t\nvariable a 2\ncpt a |\n0.5 0.5",      // missing end
        ] {
            assert!(
                read_network(&mut std::io::Cursor::new(text)).is_err(),
                "accepted malformed input {text:?}"
            );
        }
    }

    #[test]
    fn file_round_trip() {
        let bn = fixtures::sprinkler();
        let dir = std::env::temp_dir().join("peanut_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sprinkler.pnet");
        save_to_path(&bn, "sprinkler", &path).unwrap();
        let back = load_from_path(&path).unwrap();
        let ja = joint::joint_table(&bn).unwrap();
        let jb = joint::joint_table(&back).unwrap();
        assert!(ja.max_abs_diff(&jb).unwrap() < 1e-9);
        std::fs::remove_file(&path).ok();
    }
}
