//! Variable identifiers.

use std::fmt;

/// A discrete random variable, identified by a dense index into a
/// [`Domain`](crate::Domain).
///
/// `Var` is a plain `u32` newtype: cheap to copy, hash and sort. All
/// higher-level structures (scopes, potentials, cliques, separators) refer to
/// variables through it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index as a `usize`, for direct slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for Var {
    fn from(i: u32) -> Self {
        Var(i)
    }
}

impl From<usize> for Var {
    fn from(i: usize) -> Self {
        Var(u32::try_from(i).expect("variable index exceeds u32"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_index() {
        assert!(Var(0) < Var(1));
        assert!(Var(7) > Var(3));
        assert_eq!(Var(5), Var(5));
    }

    #[test]
    fn conversions_round_trip() {
        let v: Var = 42u32.into();
        assert_eq!(v.index(), 42);
        let w: Var = 7usize.into();
        assert_eq!(w, Var(7));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Var(3).to_string(), "x3");
        assert_eq!(format!("{:?}", Var(3)), "x3");
    }
}
