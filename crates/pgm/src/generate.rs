//! Seeded random-network generation.
//!
//! The paper evaluates on eight published Bayesian networks whose model
//! files are not available in this offline environment. Per the substitution
//! policy in `DESIGN.md`, `peanut-datasets` instantiates the generator below
//! with per-dataset parameters matched to the paper's Table 1 (node count,
//! edge count, max in-degree, approximate parameter count).
//!
//! The **locality window** is the knob that shapes the junction tree: parents
//! are drawn only from the `window` most recent nodes in the topological
//! order. A small window yields chain-like models (small treewidth, large
//! junction-tree diameter, like Child or TPC-H); a larger window yields
//! denser, more entangled models (larger treewidth, like Andes or Munin).

use crate::error::PgmError;
use crate::network::BayesianNetwork;
use crate::sampling::random_cpt;
use crate::{Domain, NetworkBuilder, Result, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration of the locality-window DAG generator.
#[derive(Clone, Debug)]
pub struct DagConfig {
    /// Number of variables.
    pub n_nodes: usize,
    /// Number of directed edges (must satisfy the window/in-degree bounds).
    pub n_edges: usize,
    /// Maximum in-degree of any node.
    pub max_in_degree: usize,
    /// Parents of node `i` are drawn from `[i - window, i)`.
    pub window: usize,
    /// Cardinalities are sampled uniformly from this non-empty list.
    pub cardinalities: Vec<u32>,
}

impl DagConfig {
    /// A reasonable default for tests: sparse, binary, chain-biased.
    pub fn sparse_binary(n_nodes: usize) -> Self {
        DagConfig {
            n_nodes,
            n_edges: n_nodes.saturating_sub(1) + n_nodes / 4,
            max_in_degree: 3,
            window: 4,
            cardinalities: vec![2],
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_nodes == 0 {
            return Err(PgmError::InfeasibleGenerator("n_nodes = 0".into()));
        }
        if self.cardinalities.is_empty() || self.cardinalities.contains(&0) {
            return Err(PgmError::InfeasibleGenerator(
                "cardinality list empty or contains 0".into(),
            ));
        }
        if self.max_in_degree == 0 && self.n_edges > 0 {
            return Err(PgmError::InfeasibleGenerator(
                "edges requested with max_in_degree = 0".into(),
            ));
        }
        // capacity: node i can host min(i, window, max_in_degree) parents
        let capacity: usize = (0..self.n_nodes)
            .map(|i| i.min(self.window).min(self.max_in_degree))
            .sum();
        if self.n_edges > capacity {
            return Err(PgmError::InfeasibleGenerator(format!(
                "{} edges requested but capacity is {capacity}",
                self.n_edges
            )));
        }
        if self.n_nodes > 1 && self.n_edges + 1 < self.n_nodes {
            // we still allow forests, but most paper datasets are connected;
            // the caller decides. No error here.
        }
        Ok(())
    }
}

/// Generates the DAG structure only: `parents[i]` for every node, under the
/// locality-window model. Deterministic in `seed`.
pub fn generate_dag(cfg: &DagConfig, seed: u64) -> Result<Vec<Vec<Var>>> {
    cfg.validate()?;
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.n_nodes;
    let mut parents: Vec<Vec<Var>> = vec![Vec::new(); n];
    let mut placed = 0usize;

    // First pass: one parent per non-root node (keeps the model connected)
    // as long as the edge budget allows.
    for (i, ps) in parents.iter_mut().enumerate().skip(1) {
        if placed == cfg.n_edges {
            break;
        }
        let lo = i.saturating_sub(cfg.window);
        let p = rng.gen_range(lo..i);
        ps.push(Var(p as u32));
        placed += 1;
    }

    // Second pass: fill the remaining edges over nodes with remaining
    // capacity. Extra parents are chosen to mimic the *converging families*
    // of real networks (several co-parents explaining one child):
    //
    // 1. prefer a **childless node near the first parent** — such co-parents
    //    appear in few other cliques, so the moralized family becomes a fat
    //    clique with a thin boundary (exactly the regions shortcut
    //    potentials exploit, and the dominant pattern in the diagnostic
    //    networks of the paper's benchmark);
    // 2. otherwise walk the **ancestor chain** of the first parent, whose
    //    moral edges already exist (keeps the graph near-chordal);
    // 3. otherwise fall back to the plain window.
    const FAMILY_SPREAD: usize = 1;
    let mut has_child = vec![false; n];
    for ps in &parents {
        for p in ps {
            has_child[p.index()] = true;
        }
    }
    let mut open: Vec<usize> = (1..n)
        .filter(|&i| parents[i].len() < i.min(cfg.window).min(cfg.max_in_degree))
        .collect();
    while placed < cfg.n_edges {
        if open.is_empty() {
            return Err(PgmError::InfeasibleGenerator(
                "ran out of capacity while placing edges".into(),
            ));
        }
        let slot = rng.gen_range(0..open.len());
        let i = open[slot];
        let lo = i.saturating_sub(cfg.window);
        let p1 = parents[i].first().map(|v| v.index());

        // 1. childless co-parent near p1
        let mut picked: Option<usize> = p1.and_then(|p1| {
            let fam_lo = p1.saturating_sub(FAMILY_SPREAD).max(lo);
            let fam_hi = (p1 + FAMILY_SPREAD + 1).min(i);
            (fam_lo..fam_hi)
                .filter(|&c| !has_child[c] && !parents[i].contains(&Var(c as u32)))
                .collect::<Vec<_>>()
                .choose(&mut rng)
                .copied()
        });
        // 2. ancestor chain of p1
        if picked.is_none() {
            let mut cursor = p1;
            while let Some(a) = cursor {
                if a >= lo && !parents[i].contains(&Var(a as u32)) {
                    picked = Some(a);
                    break;
                }
                cursor = parents[a].first().map(|v| v.index());
            }
        }
        // 3. anywhere in the window
        if picked.is_none() {
            picked = (lo..i)
                .filter(|&p| !parents[i].contains(&Var(p as u32)))
                .collect::<Vec<_>>()
                .choose(&mut rng)
                .copied();
        }
        match picked {
            Some(p) => {
                parents[i].push(Var(p as u32));
                has_child[p] = true;
                placed += 1;
                if parents[i].len() >= i.min(cfg.window).min(cfg.max_in_degree) {
                    open.swap_remove(slot);
                }
            }
            None => {
                open.swap_remove(slot);
            }
        }
    }
    Ok(parents)
}

/// Generates a full network: locality-window DAG plus random CPTs.
/// Deterministic in `seed`.
pub fn generate_network(cfg: &DagConfig, seed: u64) -> Result<BayesianNetwork> {
    let parents = generate_dag(cfg, seed)?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut domain = Domain::new();
    for i in 0..cfg.n_nodes {
        let card = *cfg.cardinalities.choose(&mut rng).expect("non-empty");
        domain.add(&format!("x{i}"), card)?;
    }
    let mut b = NetworkBuilder::new();
    for i in 0..cfg.n_nodes {
        b.try_var(&format!("x{i}"), domain.card(Var(i as u32)))?;
    }
    for (i, ps) in parents.iter().enumerate() {
        let child = Var(i as u32);
        let table = random_cpt(b.domain(), child, ps, &mut rng)?;
        b.cpt_potential(child, ps, table)?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = DagConfig {
            n_nodes: 30,
            n_edges: 45,
            max_in_degree: 4,
            window: 6,
            cardinalities: vec![2, 3],
        };
        let bn = generate_network(&cfg, 42).unwrap();
        assert_eq!(bn.n_vars(), 30);
        assert_eq!(bn.n_edges(), 45);
        assert!(bn.max_in_degree() <= 4);
        bn.validate_cpts().unwrap();
        // window respected
        for (p, c) in bn.edges() {
            assert!(p < c);
            assert!(c.index() - p.index() <= 6);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = DagConfig::sparse_binary(20);
        let a = generate_network(&cfg, 7).unwrap();
        let b = generate_network(&cfg, 7).unwrap();
        let c = generate_network(&cfg, 8).unwrap();
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        let ec: Vec<_> = c.edges().collect();
        assert_eq!(ea, eb);
        assert_ne!(ea, ec);
        // CPT values identical too
        for v in a.domain().all_vars() {
            assert_eq!(a.cpt(v).values(), b.cpt(v).values());
        }
    }

    #[test]
    fn infeasible_configs_rejected() {
        let cfg = DagConfig {
            n_nodes: 5,
            n_edges: 100,
            max_in_degree: 2,
            window: 2,
            cardinalities: vec![2],
        };
        assert!(matches!(
            generate_dag(&cfg, 1),
            Err(PgmError::InfeasibleGenerator(_))
        ));
        let cfg = DagConfig {
            n_nodes: 0,
            n_edges: 0,
            max_in_degree: 0,
            window: 0,
            cardinalities: vec![2],
        };
        assert!(generate_dag(&cfg, 1).is_err());
        let cfg = DagConfig {
            n_nodes: 3,
            n_edges: 1,
            max_in_degree: 1,
            window: 1,
            cardinalities: vec![],
        };
        assert!(generate_dag(&cfg, 1).is_err());
    }

    #[test]
    fn small_window_gives_path_like_graphs() {
        let cfg = DagConfig {
            n_nodes: 40,
            n_edges: 39,
            max_in_degree: 1,
            window: 1,
            cardinalities: vec![2],
        };
        let bn = generate_network(&cfg, 3).unwrap();
        // a pure chain: every non-root has exactly its predecessor as parent
        for (p, c) in bn.edges() {
            assert_eq!(p.index() + 1, c.index());
        }
    }
}
