//! Hand-built networks used in tests, examples and documentation.

use crate::network::{BayesianNetwork, NetworkBuilder};
use crate::sampling::random_cpt;
use crate::Var;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The running example of the paper's Figure 1.
///
/// Ten variables `a..i, l` whose moralized-triangulated graph yields exactly
/// the cliques of Figure 1(b): `{a,b,d}, {b,c}, {c,e}, {e,f}, {e,g,h},
/// {g,i,l}` with separators `b, c, e, e, g`.
///
/// Structure: `a→d, b→d, b→c, c→e, e→f, e→g, e→h, g→h, g→i, g→l, i→l`.
/// CPT values are seeded-random (the paper's figures do not specify numeric
/// tables; structure is what matters for the junction tree).
pub fn figure1() -> BayesianNetwork {
    let mut rng = StdRng::seed_from_u64(0xF161);
    let mut b = NetworkBuilder::new();
    let names = ["a", "b", "c", "d", "e", "f", "g", "h", "i", "l"];
    let vars: Vec<Var> = names.iter().map(|n| b.var(n, 2)).collect();
    let [a, bb, c, d, e, f, g, h, i, l]: [Var; 10] = vars.try_into().unwrap();
    let structure: [(Var, &[Var]); 10] = [
        (a, &[]),
        (bb, &[]),
        (c, &[bb]),
        (d, &[a, bb]),
        (e, &[c]),
        (f, &[e]),
        (g, &[e]),
        (h, &[e, g]),
        (i, &[g]),
        (l, &[g, i]),
    ];
    for (child, parents) in structure {
        let t = random_cpt(b.domain(), child, parents, &mut rng).unwrap();
        b.cpt_potential(child, parents, t).unwrap();
    }
    b.build().unwrap()
}

/// The classic 4-variable sprinkler network (cloudy → sprinkler, rain → wet).
pub fn sprinkler() -> BayesianNetwork {
    let mut b = NetworkBuilder::new();
    let cloudy = b.var("cloudy", 2);
    let sprinkler = b.var("sprinkler", 2);
    let rain = b.var("rain", 2);
    let wet = b.var("wet", 2);
    b.cpt(cloudy, &[], &[&[0.5, 0.5]]).unwrap();
    b.cpt(sprinkler, &[cloudy], &[&[0.5, 0.5], &[0.9, 0.1]])
        .unwrap();
    b.cpt(rain, &[cloudy], &[&[0.8, 0.2], &[0.2, 0.8]]).unwrap();
    b.cpt(
        wet,
        &[sprinkler, rain],
        &[&[1.0, 0.0], &[0.1, 0.9], &[0.1, 0.9], &[0.01, 0.99]],
    )
    .unwrap();
    b.build().unwrap()
}

/// An 8-variable medical-diagnosis network in the style of the classic ASIA
/// model (visit→tb, smoke→{lung, bronc}, {tb,lung}→either→{xray, dysp←bronc}).
pub fn asia() -> BayesianNetwork {
    let mut b = NetworkBuilder::new();
    let visit = b.var("visit_asia", 2);
    let smoke = b.var("smoking", 2);
    let tb = b.var("tuberculosis", 2);
    let lung = b.var("lung_cancer", 2);
    let bronc = b.var("bronchitis", 2);
    let either = b.var("tb_or_cancer", 2);
    let xray = b.var("xray_abnormal", 2);
    let dysp = b.var("dyspnoea", 2);
    b.cpt(visit, &[], &[&[0.99, 0.01]]).unwrap();
    b.cpt(smoke, &[], &[&[0.5, 0.5]]).unwrap();
    b.cpt(tb, &[visit], &[&[0.99, 0.01], &[0.95, 0.05]])
        .unwrap();
    b.cpt(lung, &[smoke], &[&[0.99, 0.01], &[0.9, 0.1]])
        .unwrap();
    b.cpt(bronc, &[smoke], &[&[0.7, 0.3], &[0.4, 0.6]]).unwrap();
    b.cpt(
        either,
        &[tb, lung],
        &[&[1.0, 0.0], &[0.0, 1.0], &[0.0, 1.0], &[0.0, 1.0]],
    )
    .unwrap();
    b.cpt(xray, &[either], &[&[0.95, 0.05], &[0.02, 0.98]])
        .unwrap();
    b.cpt(
        dysp,
        &[either, bronc],
        &[&[0.9, 0.1], &[0.2, 0.8], &[0.3, 0.7], &[0.1, 0.9]],
    )
    .unwrap();
    b.build().unwrap()
}

/// A Markov chain `x0 → x1 → … → x{n−1}` with uniform cardinality `card` and
/// seeded-random CPTs. The junction tree of a chain is a path — the simplest
/// shape for exercising shortcut potentials.
pub fn chain(n: usize, card: u32, seed: u64) -> BayesianNetwork {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let vars: Vec<Var> = (0..n).map(|i| b.var(&format!("x{i}"), card)).collect();
    for (i, &v) in vars.iter().enumerate() {
        let parents: &[Var] = if i == 0 { &[] } else { &vars[i - 1..i] };
        let t = random_cpt(b.domain(), v, parents, &mut rng).unwrap();
        b.cpt_potential(v, parents, t).unwrap();
    }
    b.build().unwrap()
}

/// A balanced binary out-tree of `n` nodes (node `i`'s parent is
/// `(i−1)/2`), binary variables, seeded-random CPTs. Junction trees of
/// polytrees branch, which exercises multi-child DP paths.
pub fn binary_tree(n: usize, seed: u64) -> BayesianNetwork {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new();
    let vars: Vec<Var> = (0..n).map(|i| b.var(&format!("t{i}"), 2)).collect();
    for (i, &v) in vars.iter().enumerate() {
        let parents: Vec<Var> = if i == 0 {
            vec![]
        } else {
            vec![vars[(i - 1) / 2]]
        };
        let t = random_cpt(b.domain(), v, &parents, &mut rng).unwrap();
        b.cpt_potential(v, &parents, t).unwrap();
    }
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::joint::joint_table;

    #[test]
    fn figure1_shape() {
        let bn = figure1();
        assert_eq!(bn.n_vars(), 10);
        assert_eq!(bn.n_edges(), 11);
        bn.validate_cpts().unwrap();
        let j = joint_table(&bn).unwrap();
        assert!((j.sum() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_fixtures_are_valid_distributions() {
        for bn in [sprinkler(), asia(), chain(6, 3, 1), binary_tree(9, 2)] {
            bn.validate_cpts().unwrap();
            let j = joint_table(&bn).unwrap();
            assert!((j.sum() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn chain_is_a_path() {
        let bn = chain(5, 2, 0);
        for (p, c) in bn.edges() {
            assert_eq!(p.index() + 1, c.index());
        }
        assert_eq!(bn.n_edges(), 4);
    }

    #[test]
    fn binary_tree_parents() {
        let bn = binary_tree(7, 0);
        for (p, c) in bn.edges() {
            assert_eq!(p.index(), (c.index() - 1) / 2);
        }
    }
}
