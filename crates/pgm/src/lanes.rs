//! 4-wide `f64` lane primitives for the stride-walk kernels.
//!
//! Every helper here has two implementations with *identical bit-level
//! semantics*: a manually unrolled form that builds on stable (the default),
//! and a `std::simd` form behind the non-default `simd` feature (nightly
//! only, `portable_simd`). Both process the run in 4-slot blocks with a
//! scalar tail for lengths that are not a multiple of 4, and neither ever
//! reorders an accumulation chain — each output slot sees exactly the
//! per-element IEEE operation sequence the scalar kernels used, so results
//! are bitwise identical across the three variants (legacy / unrolled /
//! simd). The differential suites assert this with `f64::to_bits`.
//!
//! Division follows the Hugin convention `0 / 0 = 0`. The SIMD form must
//! not simply divide — a 0/0 lane would produce NaN — so it divides the
//! whole vector and then selects `+0.0` on the lanes where both numerator
//! and denominator compare equal to zero (which, like the scalar `== 0.0`,
//! also catches `-0.0`).

#[cfg(feature = "simd")]
use std::simd::{cmp::SimdPartialEq, f64x4, Select};

/// `dst[i] = a[i] * b[i]`.
#[cfg(not(feature = "simd"))]
pub(crate) fn mul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((d, x), y) in (&mut dc).zip(&mut ac).zip(&mut bc) {
        d[0] = x[0] * y[0];
        d[1] = x[1] * y[1];
        d[2] = x[2] * y[2];
        d[3] = x[3] * y[3];
    }
    for ((d, &x), &y) in dc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d = x * y;
    }
}

/// `dst[i] = a[i] * b[i]`.
#[cfg(feature = "simd")]
pub(crate) fn mul(dst: &mut [f64], a: &[f64], b: &[f64]) {
    debug_assert!(dst.len() == a.len() && dst.len() == b.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((d, x), y) in (&mut dc).zip(&mut ac).zip(&mut bc) {
        (f64x4::from_slice(x) * f64x4::from_slice(y)).copy_to_slice(d);
    }
    for ((d, &x), &y) in dc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *d = x * y;
    }
}

/// `dst[i] = a[i] * s` (broadcast multiply).
#[cfg(not(feature = "simd"))]
pub(crate) fn mul_scalar(dst: &mut [f64], a: &[f64], s: f64) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    for (d, x) in (&mut dc).zip(&mut ac) {
        d[0] = x[0] * s;
        d[1] = x[1] * s;
        d[2] = x[2] * s;
        d[3] = x[3] * s;
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d = x * s;
    }
}

/// `dst[i] = a[i] * s` (broadcast multiply).
#[cfg(feature = "simd")]
pub(crate) fn mul_scalar(dst: &mut [f64], a: &[f64], s: f64) {
    debug_assert_eq!(dst.len(), a.len());
    let sv = f64x4::splat(s);
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    for (d, x) in (&mut dc).zip(&mut ac) {
        (f64x4::from_slice(x) * sv).copy_to_slice(d);
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d = x * s;
    }
}

/// `dst[i] *= a[i]`.
#[cfg(not(feature = "simd"))]
pub(crate) fn mul_assign(dst: &mut [f64], a: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    for (d, x) in (&mut dc).zip(&mut ac) {
        d[0] *= x[0];
        d[1] *= x[1];
        d[2] *= x[2];
        d[3] *= x[3];
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d *= x;
    }
}

/// `dst[i] *= a[i]`.
#[cfg(feature = "simd")]
pub(crate) fn mul_assign(dst: &mut [f64], a: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    for (d, x) in (&mut dc).zip(&mut ac) {
        (f64x4::from_slice(d) * f64x4::from_slice(x)).copy_to_slice(d);
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d *= x;
    }
}

/// `dst[i] *= s`.
#[cfg(not(feature = "simd"))]
pub(crate) fn mul_assign_scalar(dst: &mut [f64], s: f64) {
    let mut dc = dst.chunks_exact_mut(4);
    for d in &mut dc {
        d[0] *= s;
        d[1] *= s;
        d[2] *= s;
        d[3] *= s;
    }
    for d in dc.into_remainder() {
        *d *= s;
    }
}

/// `dst[i] *= s`.
#[cfg(feature = "simd")]
pub(crate) fn mul_assign_scalar(dst: &mut [f64], s: f64) {
    let sv = f64x4::splat(s);
    let mut dc = dst.chunks_exact_mut(4);
    for d in &mut dc {
        (f64x4::from_slice(d) * sv).copy_to_slice(d);
    }
    for d in dc.into_remainder() {
        *d *= s;
    }
}

/// `dst[i] += a[i]`.
#[cfg(not(feature = "simd"))]
pub(crate) fn add_assign(dst: &mut [f64], a: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    for (d, x) in (&mut dc).zip(&mut ac) {
        d[0] += x[0];
        d[1] += x[1];
        d[2] += x[2];
        d[3] += x[3];
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d += x;
    }
}

/// `dst[i] += a[i]`.
#[cfg(feature = "simd")]
pub(crate) fn add_assign(dst: &mut [f64], a: &[f64]) {
    debug_assert_eq!(dst.len(), a.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    for (d, x) in (&mut dc).zip(&mut ac) {
        (f64x4::from_slice(d) + f64x4::from_slice(x)).copy_to_slice(d);
    }
    for (d, &x) in dc.into_remainder().iter_mut().zip(ac.remainder()) {
        *d += x;
    }
}

/// `dst[i] = hugin(dst[i], den[i])` where `hugin(0, 0) = 0`. In-place:
/// the divide kernel appends the numerator run (one memcpy) and divides in
/// the slab, instead of zero-filling a buffer it would fully overwrite.
#[cfg(not(feature = "simd"))]
pub(crate) fn div_assign(dst: &mut [f64], den: &[f64]) {
    debug_assert_eq!(dst.len(), den.len());
    let mut dc = dst.chunks_exact_mut(4);
    let mut ec = den.chunks_exact(4);
    for (q, d) in (&mut dc).zip(&mut ec) {
        q[0] = hugin(q[0], d[0]);
        q[1] = hugin(q[1], d[1]);
        q[2] = hugin(q[2], d[2]);
        q[3] = hugin(q[3], d[3]);
    }
    for (q, &d) in dc.into_remainder().iter_mut().zip(ec.remainder()) {
        *q = hugin(*q, d);
    }
}

/// `dst[i] = hugin(dst[i], den[i])` where `hugin(0, 0) = 0`.
#[cfg(feature = "simd")]
pub(crate) fn div_assign(dst: &mut [f64], den: &[f64]) {
    debug_assert_eq!(dst.len(), den.len());
    let zero = f64x4::splat(0.0);
    let mut dc = dst.chunks_exact_mut(4);
    let mut ec = den.chunks_exact(4);
    for (q, d) in (&mut dc).zip(&mut ec) {
        let nv = f64x4::from_slice(q);
        let dv = f64x4::from_slice(d);
        // a plain nv / dv would put NaN in 0/0 lanes; mask them to +0.0
        let both_zero = nv.simd_eq(zero) & dv.simd_eq(zero);
        both_zero.select(zero, nv / dv).copy_to_slice(q);
    }
    for (q, &d) in dc.into_remainder().iter_mut().zip(ec.remainder()) {
        *q = hugin(*q, d);
    }
}

/// The scalar Hugin division: `0 / 0 = 0`, anything else is IEEE.
#[inline(always)]
pub(crate) fn hugin(n: f64, d: f64) -> f64 {
    if d == 0.0 && n == 0.0 {
        0.0
    } else {
        n / d
    }
}

/// Strictly sequential sum of a run — the same fold `iter().sum()` performs.
/// Never unrolled: reassociating a single accumulation chain changes bits.
#[inline]
pub(crate) fn seq_sum(run: &[f64]) -> f64 {
    run.iter().sum()
}

/// Sums four consecutive equal-length runs of `block` into four independent
/// accumulators: `out[k] = Σ_j block[k·run_len + j]`, each chain strictly
/// sequential in `j`.
///
/// This is the marginalization fast path: when consecutive source runs feed
/// consecutive target slots, four runs are processed in lock-step, which
/// breaks the floating-point add latency chain (4 independent chains in
/// flight) *without* reordering any single chain — each output slot still
/// accumulates in exactly the legacy order, so the result is bit-identical.
#[cfg(not(feature = "simd"))]
pub(crate) fn sum_4_runs(block: &[f64], run_len: usize) -> [f64; 4] {
    debug_assert_eq!(block.len(), 4 * run_len);
    let (r0, rest) = block.split_at(run_len);
    let (r1, rest) = rest.split_at(run_len);
    let (r2, r3) = rest.split_at(run_len);
    let mut acc = [0.0f64; 4];
    for j in 0..run_len {
        acc[0] += r0[j];
        acc[1] += r1[j];
        acc[2] += r2[j];
        acc[3] += r3[j];
    }
    acc
}

/// See the stable twin: four lock-step sequential chains, one per lane.
#[cfg(feature = "simd")]
pub(crate) fn sum_4_runs(block: &[f64], run_len: usize) -> [f64; 4] {
    debug_assert_eq!(block.len(), 4 * run_len);
    let (r0, rest) = block.split_at(run_len);
    let (r1, rest) = rest.split_at(run_len);
    let (r2, r3) = rest.split_at(run_len);
    let mut acc = f64x4::splat(0.0);
    for j in 0..run_len {
        acc += f64x4::from_array([r0[j], r1[j], r2[j], r3[j]]);
    }
    acc.to_array()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let x = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ salt;
                ((x >> 11) as f64 / (1u64 << 53) as f64) + 0.001
            })
            .collect()
    }

    #[test]
    fn mul_matches_scalar_including_tails() {
        for n in [0, 1, 3, 4, 5, 8, 13] {
            let a = seq(n, 1);
            let b = seq(n, 2);
            let mut dst = vec![0.0; n];
            mul(&mut dst, &a, &b);
            for i in 0..n {
                assert_eq!(dst[i].to_bits(), (a[i] * b[i]).to_bits());
            }
        }
    }

    #[test]
    fn mul_scalar_and_assign_match() {
        for n in [1, 4, 7, 16, 21] {
            let a = seq(n, 3);
            let s = 1.7;
            let mut d1 = vec![0.0; n];
            mul_scalar(&mut d1, &a, s);
            let mut d2 = a.clone();
            mul_assign_scalar(&mut d2, s);
            let mut d3 = vec![1.0; n];
            mul_assign(&mut d3, &a);
            for i in 0..n {
                assert_eq!(d1[i].to_bits(), (a[i] * s).to_bits());
                assert_eq!(d2[i].to_bits(), (a[i] * s).to_bits());
                assert_eq!(d3[i].to_bits(), (1.0f64 * a[i]).to_bits());
            }
        }
    }

    #[test]
    fn add_assign_matches_scalar() {
        for n in [2, 4, 6, 11] {
            let a = seq(n, 4);
            let b = seq(n, 5);
            let mut dst = b.clone();
            add_assign(&mut dst, &a);
            for i in 0..n {
                assert_eq!(dst[i].to_bits(), (b[i] + a[i]).to_bits());
            }
        }
    }

    #[test]
    fn div_zero_cells_follow_hugin_convention() {
        // one full 4-block plus a tail, with 0/0, x/0, 0/x, -0.0/0.0 cells
        let num = [0.0, 2.0, 0.0, 5.0, -0.0, 3.0, 0.0];
        let den = [0.0, 0.0, 4.0, 2.5, 0.0, 3.0, 0.0];
        let mut dst = num;
        div_assign(&mut dst, &den);
        assert_eq!(dst[0].to_bits(), 0.0f64.to_bits()); // 0/0 -> +0.0
        assert!(dst[1].is_infinite()); // x/0 surfaces as inf (modelling error)
        assert_eq!(dst[2], 0.0);
        assert_eq!(dst[3], 2.0);
        assert_eq!(dst[4].to_bits(), 0.0f64.to_bits()); // -0.0/0.0 -> +0.0
        assert_eq!(dst[5], 1.0);
        assert_eq!(dst[6].to_bits(), 0.0f64.to_bits()); // 0/0 in the tail
                                                        // broadcast (scalar) denominators go through `hugin` directly:
                                                        // zero and negative-zero denominators are both the 0/0 case
        assert_eq!(hugin(0.0, 0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(hugin(-0.0, 0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(hugin(0.0, -0.0).to_bits(), 0.0f64.to_bits());
        assert!(hugin(2.0, 0.0).is_infinite());
        assert!(hugin(2.0, -0.0).is_infinite());
    }

    #[test]
    fn sum_4_runs_is_bitwise_sequential_per_lane() {
        for run_len in [1, 2, 3, 5, 9] {
            let block = seq(4 * run_len, 6);
            let got = sum_4_runs(&block, run_len);
            for k in 0..4 {
                let want: f64 = block[k * run_len..(k + 1) * run_len].iter().sum();
                assert_eq!(got[k].to_bits(), want.to_bits(), "lane {k}");
            }
        }
    }

    #[test]
    fn seq_sum_matches_iter_sum() {
        let xs = seq(17, 7);
        assert_eq!(seq_sum(&xs).to_bits(), xs.iter().sum::<f64>().to_bits());
    }
}
