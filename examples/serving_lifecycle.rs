//! The materialization lifecycle, end to end: a server whose traffic
//! migrates between two regions of the model, with a re-materialization
//! controller running on a background thread.
//!
//! The junction tree is pivoted mid-chain, so it has two symmetric arms —
//! think of them as two tenant regions of one deployed model. The engine
//! starts with a PEANUT+ materialization trained on region-A traffic. A
//! streaming λ-schedule then ramps arrivals over to region B (the λ-drift
//! of §5.3, Figures 8–9, as a live stream). The controller watches the
//! epoch's observed benefit collapse, re-runs the offline selection on the
//! *observed* query distribution, and hot-publishes the next epoch —
//! serving never pauses, and stale answer-cache entries die lazily by
//! their epoch tag.
//!
//! Run with: `cargo run --release --example serving_lifecycle`

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::{OfflineContext, Peanut, PeanutConfig, Workload};
use peanut::pgm::{fixtures, Scope};
use peanut::serving::{
    LifecycleConfig, RematerializationController, ServeRequest, ServingConfig, ServingEngine,
};
use peanut::workload::{DriftSchedule, DriftStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const BATCH: usize = 100;
const N_QUERIES: usize = 4000;
const BUDGET: u64 = 4096;

/// Long-range marginals over one arm of the chain: a regional workload
/// whose shortcut potentials are useless for the other arm.
fn region_pool(lo: u32, hi: u32) -> Vec<Scope> {
    [6u32, 8]
        .into_iter()
        .flat_map(|span| (lo..hi - span).map(move |a| Scope::from_indices(&[a, a + span])))
        .collect()
}

fn main() {
    let bn = fixtures::chain(32, 2, 13);
    let mut tree = build_junction_tree(&bn).expect("junction tree");
    // pivot mid-chain: two symmetric arms, both far enough from the pivot
    // for shortcut potentials to pay off equally
    tree.set_pivot(tree.n_cliques() / 2);
    let engine = QueryEngine::numeric(&tree, &bn).expect("calibrates");

    // finite per-region query pools, as in the paper's workload model
    let region_a = region_pool(21, 32);
    let region_b = region_pool(0, 11);

    let train_w = Workload::from_queries(region_a.iter().cloned());
    let ctx = OfflineContext::new(&tree, &train_w).expect("context");
    let (mat, _) = Peanut::offline_numeric(
        &ctx,
        &PeanutConfig::plus(BUDGET),
        engine.numeric_state().expect("numeric"),
    )
    .expect("materializes");
    println!(
        "epoch 0: trained on region-A traffic — {} shortcuts, {} entries",
        mat.len(),
        mat.total_size()
    );

    let serving = ServingEngine::new(engine, mat, ServingConfig::default());
    let mut ctl = RematerializationController::new(
        &serving,
        &train_w,
        LifecycleConfig::new(BUDGET).with_min_window(400),
    );
    println!(
        "reference savings of epoch 0 on its training distribution: {:.1}%\n",
        100.0 * ctl.reference_savings()
    );

    // the served stream ramps from pure region-A to pure region-B traffic
    let schedule = DriftSchedule::Linear {
        from: 1.0,
        to: 0.0,
        over: N_QUERIES / 2,
    };
    let stream: Vec<ServeRequest> = DriftStream::new(&region_a, &region_b, schedule, 7)
        .take(N_QUERIES)
        .map(ServeRequest::marginal)
        .collect();

    println!("  batch  lambda  epoch  window-savings  errors");
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let controller = s.spawn(|| {
            // background worker: observes, re-selects, publishes — the
            // serving thread below never waits on it
            ctl.run(&stop, Duration::from_micros(500))
                .expect("controller")
        });
        for (b, batch) in stream.chunks(BATCH).enumerate() {
            let (answers, stats) = serving.serve_batch(batch);
            let errors = answers.iter().filter(|a| !a.is_served()).count();
            assert_eq!(errors, 0, "serving must stay clean across swaps");
            if b % 5 == 0 {
                let lambda = 1.0 - ((b * BATCH) as f64 / (N_QUERIES / 2) as f64).min(1.0);
                println!(
                    "  {b:>5}  {lambda:>6.2}  {:>5}  {:>13.1}%  {errors:>6}",
                    stats.epoch,
                    100.0 * serving.stats().snapshot().observed_savings(),
                );
            }
            // arrival pacing: a server drains waves, not a tight loop
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Relaxed);
        controller.join().expect("controller thread")
    });

    println!();
    if ctl.swaps().is_empty() {
        println!("no re-materialization was needed (traffic never drifted far enough)");
    }
    for ev in ctl.swaps() {
        println!(
            "swap -> epoch {}: after {} arrivals the epoch delivered {:.1}% \
             (was selected for {:.1}%); re-selected {} shortcuts / {} entries \
             from {} observed scopes in {:.1?}, expecting {:.1}%",
            ev.epoch,
            ev.at_arrivals,
            100.0 * ev.observed_savings,
            100.0 * ev.reference_savings,
            ev.shortcuts,
            ev.total_size,
            ev.distinct_scopes,
            ev.selection,
            100.0 * ev.new_reference_savings,
        );
    }
    println!(
        "\n{} observation window(s) closed, final epoch {}",
        ctl.windows(),
        serving.epoch()
    );
    // replay the drifted region once more against the final epoch: this is
    // what steady-state traffic looks like after the lifecycle converged
    let tail: Vec<ServeRequest> = region_b
        .iter()
        .cloned()
        .map(ServeRequest::marginal)
        .collect();
    serving.reset_stats();
    serving.serve_batch(&tail);
    let snap = serving.stats().snapshot();
    println!(
        "region-B traffic on the final epoch: {:.1}% savings, {:.0}% shortcut hit rate",
        100.0 * snap.observed_savings(),
        100.0 * snap.shortcut_hit_rate(),
    );
    println!("the migrated traffic is served by shortcuts selected from what was observed —");
    println!("the robustness gap of §5.3 closed at runtime, with no serving pause");
}
