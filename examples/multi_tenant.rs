//! Multi-tenant sharded serving, end to end: three Bayesian networks
//! behind one endpoint, one shared worker pool, one global
//! materialization budget.
//!
//! Each tenant is its own calibrated junction tree with its own
//! epoch-versioned materialization, observation stats and answer cache —
//! the sharded engine only shares the *workers*. Traffic is a single
//! interleaved arrival stream with Zipf-skewed per-tenant rates. A
//! [`FleetController`] watches all tenants at once and splits the global
//! budget across them by observed benefit (a greedy knapsack over
//! per-tenant candidate shortcut sets, weighted by traffic share). When
//! one tenant's traffic spikes, the next rebalance shifts budget toward
//! it — and only the re-allocated tenants' epochs move; everyone else's
//! caches stay warm.
//!
//! Run with: `cargo run --release --example multi_tenant`

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::Materialization;
use peanut::pgm::{fixtures, Scope};
use peanut::serving::{
    replay_mixed, FleetConfig, FleetController, ReplayConfig, ServeRequest, ShardConfig,
    ShardedServingEngine, TenantId,
};
use peanut::workload::{tenant_queries, zipf_weights, TenantTraffic};

const N_TENANTS: usize = 3;
const GLOBAL_BUDGET: u64 = 48;
const WINDOW: usize = 1200;

/// A tenant's query pool: long-range pair marginals over its own chain.
fn pool(n_vars: u32) -> Vec<Scope> {
    [5u32, 7]
        .into_iter()
        .flat_map(|span| (0..n_vars - span).map(move |a| Scope::from_indices(&[a, a + span])))
        .collect()
}

fn main() {
    // three distinct models — think three customers' risk networks
    let bns: Vec<_> = (0..N_TENANTS)
        .map(|t| fixtures::chain(22, 2, 31 + 7 * t as u64))
        .collect();
    let trees: Vec<_> = bns
        .iter()
        .map(|bn| build_junction_tree(bn).expect("junction tree"))
        .collect();
    let pools: Vec<Vec<Scope>> = bns.iter().map(|bn| pool(bn.n_vars() as u32)).collect();

    // register every tenant with an *empty* materialization: the fleet
    // controller bootstraps each allocation from observed traffic
    let mut sharded = ShardedServingEngine::new(ShardConfig::default());
    for (t, (tree, bn)) in trees.iter().zip(&bns).enumerate() {
        let engine = QueryEngine::numeric(tree, bn).expect("calibrates");
        sharded
            .register(TenantId(t as u32), engine, Materialization::default())
            .expect("fresh tenant id");
    }
    println!(
        "{} tenants registered behind one endpoint ({} shared workers)\n",
        sharded.len(),
        sharded.workers()
    );

    let mut ctl = FleetController::new(
        &sharded,
        FleetConfig::new(GLOBAL_BUDGET).with_min_window(600),
    );

    let serve_window = |weights: &[f64], seed: u64| {
        let tenants: Vec<TenantTraffic> = pools
            .iter()
            .zip(weights)
            .map(|(p, &w)| TenantTraffic::steady(w, p.clone()))
            .collect();
        let arrivals: Vec<(TenantId, ServeRequest)> = tenant_queries(&tenants, WINDOW, seed)
            .into_iter()
            .map(|(t, q)| (TenantId(t as u32), ServeRequest::marginal(q)))
            .collect();
        let report = replay_mixed(&sharded, &arrivals, &ReplayConfig { batch_size: 100 });
        assert_eq!(report.errors, 0, "fleet serving must stay clean");
        report
    };
    let print_rebalance = |tag: &str, r: &peanut::serving::FleetRebalance| {
        println!(
            "{tag}: rebalanced {} arrivals -> {} of {GLOBAL_BUDGET} budget entries \
             allocated in {:.1?}",
            r.at_arrivals, r.total_size, r.selection
        );
        for a in &r.allocations {
            println!(
                "  {}: {:>4.0}% of traffic -> {:>2} shortcuts / {:>2} entries, \
                 expecting {:>4.1}% savings{}",
                a.tenant,
                100.0 * a.share,
                a.shortcuts,
                a.budget_used,
                100.0 * a.expected_savings,
                match a.published {
                    Some(e) => format!(", published epoch {e}"),
                    None => String::from(", allocation unchanged"),
                }
            );
        }
        println!();
    };

    // --- phase 1: a Zipf fleet — tenant#0 hot, tenant#2 cold ---
    let weights = zipf_weights(N_TENANTS, 1.0);
    serve_window(&weights, 17);
    let r1 = ctl
        .tick()
        .expect("fleet tick")
        .expect("first full window rebalances (fleet cold start)")
        .clone();
    print_rebalance("phase 1 (Zipf traffic)", &r1);

    // steady traffic: the controller holds, nobody's epoch churns
    serve_window(&weights, 18);
    assert!(ctl.tick().expect("fleet tick").is_none());
    println!("steady window: shares unchanged, controller holds (no republish)\n");

    // --- phase 2: the cold tenant spikes to the top of the fleet ---
    let mut spiked = weights.clone();
    spiked[N_TENANTS - 1] *= 10.0;
    serve_window(&spiked, 19);
    let r2 = ctl
        .tick()
        .expect("fleet tick")
        .expect("the share shift forces a rebalance")
        .clone();
    print_rebalance("phase 2 (tenant#2 spiked)", &r2);

    let alloc = |r: &peanut::serving::FleetRebalance, t: u32| {
        r.allocations
            .iter()
            .find(|a| a.tenant == TenantId(t))
            .map(|a| a.budget_used)
            .unwrap_or(0)
    };
    let (before, after) = (
        alloc(&r1, N_TENANTS as u32 - 1),
        alloc(&r2, N_TENANTS as u32 - 1),
    );
    assert!(
        after > before,
        "the spiking tenant must gain budget ({before} -> {after})"
    );
    println!("the spiking tenant's slice of the global budget grew {before} -> {after} entries;");
    println!("its cache entries from the old epoch die lazily, every other tenant stays warm —");
    println!("one endpoint, many trees, and the budget follows the traffic.");
}
