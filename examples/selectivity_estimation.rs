//! Probabilistic-database selectivity estimation: the TPC-H use case that
//! motivates the paper's introduction (Getoor et al.; Tzoumas et al.).
//!
//! A query optimizer estimates predicate selectivities from a Bayesian
//! network learned over table attributes. Attribute domains are large, so
//! the junction tree cannot be calibrated in reasonable time — exactly the
//! paper's TPC-H setting. Everything here runs in *symbolic* (size-only)
//! mode: the optimizer plans with operation counts, and PEANUT+ picks which
//! attribute-set distributions to precompute for the observed query mix.
//!
//! Run with: `cargo run --release --example selectivity_estimation`

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut::pgm::Scope;
use peanut::workload::{uniform_queries, QuerySpec};

fn main() {
    // the TPC-H-like network: 38 attributes, domains up to ~110 values
    let spec = peanut::datasets::dataset("TPC-H").expect("dataset");
    let bn = spec.build().expect("network");
    let tree = build_junction_tree(&bn).expect("junction tree");
    println!(
        "TPC-H-style attribute network: {} attributes, {} parameters, junction tree of {} cliques (treewidth {})",
        bn.n_vars(),
        bn.n_parameters(),
        tree.n_cliques(),
        tree.treewidth(),
    );

    // observed predicate workload: pairs/triples of correlated attributes
    let train = uniform_queries(
        bn.domain(),
        400,
        QuerySpec {
            min_vars: 2,
            max_vars: 3,
        },
        7,
    );
    let test = uniform_queries(
        bn.domain(),
        100,
        QuerySpec {
            min_vars: 2,
            max_vars: 3,
        },
        8,
    );

    // offline advisor: choose distributions to precompute, 10 * b_T budget
    let budget = tree.total_separator_size() * 10;
    let w = Workload::from_queries(train.iter().cloned());
    let ctx = OfflineContext::new(&tree, &w).expect("context");
    let cfg = PeanutConfig::plus(budget).with_epsilon(1.2);
    let mat = Peanut::offline(&ctx, &cfg);
    println!(
        "\nadvisor materialized {} attribute-set distributions ({} entries; budget {budget})",
        mat.len(),
        mat.total_size()
    );

    // planner cost model: operation counts per selectivity estimate
    let engine = QueryEngine::symbolic(&tree);
    let online = OnlineEngine::new(&engine, &mat);
    let mut base = 0u128;
    let mut with = 0u128;
    let mut best: Option<(f64, Scope)> = None;
    for q in &test {
        let b = online.baseline_cost(q).expect("baseline").ops as u128;
        let c = online.cost(q).expect("cost").ops as u128;
        base += b;
        with += c;
        let saving = (b - c) as f64 / b.max(1) as f64;
        if best.as_ref().is_none_or(|(s, _)| saving > *s) {
            best = Some((saving, q.clone()));
        }
    }
    println!(
        "\nestimating {} selectivities: {with} ops with materialization vs {base} plain ({:.1}% saved)",
        test.len(),
        100.0 * (base - with) as f64 / base as f64
    );
    if let Some((s, q)) = best {
        let names: Vec<&str> = q.iter().map(|v| bn.domain().name(v)).collect();
        println!(
            "best single estimate: predicate over {{{}}} got {:.1}% cheaper",
            names.join(","),
            100.0 * s
        );
    }
}
