//! Medical diagnosis: workload-aware materialization for a diagnostic
//! query mix over an ASIA-style lung-disease network (the domain the
//! Child / Hepar II / PathFinder benchmarks of the paper come from).
//!
//! A clinic dashboard asks the same few joint distributions over and over
//! (symptom–disease pairs); PEANUT+ learns that mix from the query log and
//! materializes the shortcut potentials that serve it best.
//!
//! Run with: `cargo run --release --example medical_diagnosis`

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut::pgm::{fixtures, Scope};

fn main() {
    let bn = fixtures::asia();
    let d = bn.domain().clone();
    let tree = build_junction_tree(&bn).expect("junction tree");
    let engine = QueryEngine::numeric(&tree, &bn).expect("calibration");

    // the clinic's historical query log: mostly symptom–disease joints
    let var = |n: &str| d.var(n).unwrap();
    let dashboard = [
        (vec!["xray_abnormal", "lung_cancer"], 40),
        (vec!["dyspnoea", "bronchitis"], 30),
        (vec!["smoking", "lung_cancer", "dyspnoea"], 15),
        (vec!["visit_asia", "tuberculosis"], 10),
        (vec!["xray_abnormal", "smoking"], 5),
    ];
    let mut log: Vec<Scope> = Vec::new();
    for (names, count) in &dashboard {
        let q = Scope::from_iter(names.iter().map(|n| var(n)));
        log.extend(std::iter::repeat_n(q, *count));
    }

    // offline: learn the materialization from the log
    let w = Workload::from_queries(log.iter().cloned());
    let ctx = OfflineContext::new(&tree, &w).expect("context");
    let cfg = PeanutConfig::plus(128).with_epsilon(1.0);
    let (mat, build_ops) =
        Peanut::offline_numeric(&ctx, &cfg, engine.numeric_state().unwrap()).expect("offline");
    println!(
        "materialized {} shortcut potential(s) ({} entries, {} ops to build)\n",
        mat.len(),
        mat.total_size(),
        build_ops
    );

    // online: serve the dashboard
    let online = OnlineEngine::new(&engine, &mat);
    let mut base_total = 0u64;
    let mut fast_total = 0u64;
    for (names, _) in &dashboard {
        let q = Scope::from_iter(names.iter().map(|n| var(n)));
        let base = online.baseline_cost(&q).expect("baseline").ops;
        let (pot, cost) = online.answer(&q).expect("answer");
        base_total += base;
        fast_total += cost.ops;
        println!(
            "P({}) — {} ops (plain JT: {base} ops), mass {:.4}",
            names.join(", "),
            cost.ops,
            pot.sum()
        );
        // e.g. print the "both present" probability for the pair queries
        if pot.scope().len() == 2 {
            println!("    P(both = 1) = {:.5}", pot.get(&[1, 1]));
        }
    }
    println!(
        "\ndashboard total: {fast_total} ops with PEANUT+ vs {base_total} plain — {:.1}% saved",
        100.0 * (base_total - fast_total) as f64 / base_total as f64
    );
}
