//! Quickstart: the paper's running example (Figure 1) end to end.
//!
//! Builds the ten-variable network of Figure 1, its junction tree, answers
//! the in-clique query {g, h} and the out-of-clique query {b, i, f} of
//! Figure 2, then materializes workload-aware shortcut potentials with
//! PEANUT+ and shows the cost reduction.
//!
//! Run with: `cargo run --release --example quickstart`

use peanut::junction::{build_junction_tree, QueryEngine};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut::pgm::{fixtures, Scope};

fn main() {
    // 1. the Bayesian network of Figure 1(a)
    let bn = fixtures::figure1();
    let d = bn.domain().clone();
    println!(
        "network: {} variables, {} edges, {} parameters",
        bn.n_vars(),
        bn.n_edges(),
        bn.n_parameters()
    );

    // 2. its junction tree (Figure 1(b)), rooted at the clique {b, c}
    let mut tree = build_junction_tree(&bn).expect("junction tree");
    let bc = Scope::from_iter([d.var("b").unwrap(), d.var("c").unwrap()]);
    let pivot = tree
        .cliques()
        .iter()
        .position(|c| *c == bc)
        .expect("bc clique");
    tree.set_pivot(pivot);
    println!(
        "junction tree: {} cliques, treewidth {}, diameter {}",
        tree.n_cliques(),
        tree.treewidth(),
        tree.diameter()
    );
    for (i, c) in tree.cliques().iter().enumerate() {
        let names: Vec<&str> = c.iter().map(|v| d.name(v)).collect();
        println!("  clique {i}: {{{}}}", names.join(","));
    }

    // 3. exact inference: calibrate and answer queries
    let engine = QueryEngine::numeric(&tree, &bn).expect("calibration");
    let q_in = Scope::from_iter([d.var("g").unwrap(), d.var("h").unwrap()]);
    let (p_gh, cost_in) = engine.answer(&q_in).expect("in-clique query");
    println!("\nP(g, h) — in-clique, {} ops:", cost_in.ops);
    for (idx, v) in p_gh.values().iter().enumerate() {
        let asg = p_gh.assignment_of(idx);
        println!("  g={} h={} -> {v:.4}", asg[0], asg[1]);
    }

    let q_out = Scope::from_iter([
        d.var("b").unwrap(),
        d.var("i").unwrap(),
        d.var("f").unwrap(),
    ]);
    let (p_bif, cost_out) = engine.answer(&q_out).expect("out-of-clique query");
    println!(
        "\nP(b, i, f) — out-of-clique via Steiner-tree message passing, {} ops, {} messages (total mass {:.4})",
        cost_out.ops,
        cost_out.messages,
        p_bif.sum()
    );

    // 4. workload-aware materialization: suppose {b,i,f}-style queries
    //    dominate the workload
    let workload: Vec<Scope> = vec![q_out.clone(); 8]
        .into_iter()
        .chain([q_in.clone(), q_in.clone()])
        .collect();
    let w = Workload::from_queries(workload);
    let ctx = OfflineContext::new(&tree, &w).expect("context");
    let cfg = PeanutConfig::plus(64).with_epsilon(1.0);
    let (mat, _) =
        Peanut::offline_numeric(&ctx, &cfg, engine.numeric_state().unwrap()).expect("offline");
    println!(
        "\nPEANUT+ materialized {} shortcut potential(s), {} table entries total:",
        mat.len(),
        mat.total_size()
    );
    for ms in &mat.shortcuts {
        let names: Vec<&str> = ms.shortcut.scope().iter().map(|v| d.name(v)).collect();
        println!(
            "  scope {{{}}} over cliques {:?}, size {}, workload benefit {:.1}",
            names.join(","),
            ms.shortcut.nodes(),
            ms.shortcut.size(),
            ms.benefit
        );
    }

    // 5. the same query, now with shortcuts
    let online = OnlineEngine::new(&engine, &mat);
    let (p_fast, cost_fast) = online.answer(&q_out).expect("online answer");
    assert!(p_fast.max_abs_diff(&p_bif).unwrap() < 1e-9, "same answer");
    println!(
        "\nP(b, i, f) with shortcuts: {} ops ({} shortcut(s) used) — {:.1}% cheaper, identical result",
        cost_fast.ops,
        cost_fast.shortcuts_used,
        100.0 * (cost_out.ops - cost_fast.ops) as f64 / cost_out.ops as f64
    );
}
