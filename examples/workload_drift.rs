//! Workload drift: how robust is a materialization when the query
//! distribution changes after deployment? (paper §5.3, Figures 8–9)
//!
//! Trains PEANUT+ on a *skewed* workload (deep variables queried often),
//! then evaluates on mixtures drifting toward a *uniform* workload, and
//! conversely.
//!
//! Run with: `cargo run --release --example workload_drift`

use peanut::junction::{build_junction_tree, QueryEngine, RootedTree};
use peanut::materialize::{OfflineContext, OnlineEngine, Peanut, PeanutConfig, Workload};
use peanut::workload::{mix, skewed_queries, uniform_queries, QuerySpec};

fn main() {
    let spec = peanut::datasets::dataset("Child").expect("dataset");
    let bn = spec.build().expect("network");
    let tree = build_junction_tree(&bn).expect("junction tree");
    let rooted = RootedTree::new(&tree);

    let skew = skewed_queries(&tree, &rooted, 500, QuerySpec::default(), 1);
    let unif = uniform_queries(bn.domain(), 500, QuerySpec::default(), 2);

    let budget = tree.total_separator_size() * 10;
    let engine = QueryEngine::symbolic(&tree);

    for (label, train, other) in [("skewed", &skew, &unif), ("uniform", &unif, &skew)] {
        let w = Workload::from_queries(train.iter().cloned());
        let ctx = OfflineContext::new(&tree, &w).expect("context");
        let mat = Peanut::offline(&ctx, &PeanutConfig::plus(budget).with_epsilon(1.2));
        let online = OnlineEngine::new(&engine, &mat);
        println!(
            "trained on the {label} workload ({} shortcuts, {} entries):",
            mat.len(),
            mat.total_size()
        );
        println!("    lambda   avg JT cost   avg PEANUT+ cost   savings");
        for (i, lambda) in [1.0, 0.75, 0.5, 0.25, 0.0].into_iter().enumerate() {
            let test = mix(train, other, lambda, 400, 50 + i as u64);
            let mut base = 0u128;
            let mut with = 0u128;
            for q in &test {
                base += online.baseline_cost(q).expect("cost").ops as u128;
                with += online.cost(q).expect("cost").ops as u128;
            }
            println!(
                "    {lambda:>6.2} {:>13} {:>18} {:>8.1}%",
                base / test.len() as u128,
                with / test.len() as u128,
                100.0 * (base - with) as f64 / base as f64
            );
        }
        println!("(lambda = share of test queries still from the training distribution)\n");
    }
    println!("the savings degrade gracefully as the workload drifts — the paper's §5.3 finding");
}
