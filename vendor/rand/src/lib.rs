//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements exactly the subset of the `rand 0.8` API the workspace uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` over half-open ranges of the
//!   common integer types and `f64`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] (a SplitMix64 generator — deterministic, seedable, and
//!   statistically good enough for test fixtures and synthetic CPTs),
//! * [`seq::SliceRandom::choose`].
//!
//! Sequences produced differ from the real `rand` crate, but every consumer
//! in this workspace only requires determinism for a fixed seed, not any
//! particular stream.

/// A random number generator: the minimal core used by this workspace.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension trait with user-facing sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A seedable generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        // Spans are computed with wrapping u128 arithmetic so that signed
        // bounds (sign-extended by the cast) and full-width ranges sample
        // correctly instead of overflowing in debug builds; the final
        // wrapping_add is exact modulo 2^bits for two's-complement types.
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    ///
    /// Not the real `StdRng` (ChaCha12) — this shim only promises a fixed
    /// stream per seed, which is all the workspace relies on.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: uniform choice of one element.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[idx])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let c = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&c));
        }
    }

    #[test]
    fn signed_and_extreme_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&x));
            let y = rng.gen_range(-100i64..-10);
            assert!((-100..-10).contains(&y));
            let z = rng.gen_range(i64::MIN..i64::MAX);
            assert!(z < i64::MAX);
            let _ = rng.gen_range(0u64..=u64::MAX);
        }
    }

    #[test]
    fn f64_unit_range_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let &x = items.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
