//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the criterion API the workspace's benches use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`BenchmarkGroup`] with `bench_with_input` / `sample_size` / `finish`,
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis it runs a short warm-up, then
//! times batches of iterations for a fixed measurement window and reports the
//! mean wall-clock time per iteration on stdout. That is enough to record a
//! coarse baseline and keep `cargo bench` green without the real dependency.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named `name` parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times a closure: the argument to every `bench_*` callback.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly and records mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a first estimate of the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        // Batch size targeting ~10 batches inside the measurement window.
        let batch =
            (MEASURE.as_nanos() / 10 / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u32;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / batch);
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn report(id: &str, bencher: &Bencher) {
    println!(
        "{id:<50} time: {:>12.3?}   ({} samples)",
        bencher.mean(),
        bencher.samples.len()
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs `routine` as a benchmark identified by `id` with `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        routine(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs `routine` as a benchmark named `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        routine(&mut b);
        report(&format!("{}/{}", self.name, id.into()), &b);
        self
    }

    /// Accepted for API compatibility; this shim sizes batches by wall clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager (shim of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        routine(&mut b);
        report(&id.into(), &b);
        self
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(!b.samples.is_empty());
        assert!(b.mean() > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("op", 3).id, "op/3");
        assert_eq!(BenchmarkId::from_parameter("Child").id, "Child");
    }
}
