//! Self-tests of the interleaving explorer on toy protocols with *known*
//! verdicts: the checker must pass correct code, find the planted bug in
//! racy code, and replay any failure deterministically.

use interleave::atomic::{AtomicUsize, Ordering};
use interleave::sync::{Condvar, Mutex, RwLock};
use interleave::{explore, explore_random, replay_plan, replay_seed, Config, FailureKind, Outcome};
use std::sync::Arc;

/// Two threads doing load-then-store increments lose updates under some
/// interleaving; the exhaustive explorer must find one.
fn racy_counter() {
    let counter = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&counter);
    let t = interleave::thread::spawn(move || {
        // ordering: SeqCst — the model is SC regardless; the bug is the
        // non-atomic read-modify-write, not the ordering.
        let v = c2.load(Ordering::SeqCst);
        c2.store(v + 1, Ordering::SeqCst);
    });
    let v = counter.load(Ordering::SeqCst);
    counter.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

/// The fetch_add fix admits no failing interleaving.
fn correct_counter() {
    let counter = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&counter);
    let t = interleave::thread::spawn(move || {
        c2.fetch_add(1, Ordering::SeqCst);
    });
    counter.fetch_add(1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(counter.load(Ordering::SeqCst), 2);
}

/// Classic lost wakeup: the flag is set but nobody notifies, so a waiter
/// that got to `wait` first sleeps forever — a deadlock under the
/// schedules where the waiter checks before the setter runs.
fn lost_wakeup() {
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let p2 = Arc::clone(&pair);
    let t = interleave::thread::spawn(move || {
        let mut flag = p2.0.lock();
        *flag = true;
        // BUG: no notify.
    });
    let (flag, cv) = (&pair.0, &pair.1);
    let mut g = flag.lock();
    while !*g {
        g = cv.wait(g);
    }
    drop(g);
    t.join().unwrap();
}

#[test]
fn exhaustive_passes_correct_counter_and_counts_schedules() {
    let r1 = explore(&Config::exhaustive(), correct_counter);
    let rep = r1.assert_pass();
    assert!(rep.complete, "small protocol must be fully enumerated");
    assert!(rep.schedules > 1, "must explore more than one interleaving");
    // Determinism: the same exploration re-runs to the same count.
    let r2 = explore(&Config::exhaustive(), correct_counter);
    assert_eq!(rep.schedules, r2.assert_pass().schedules);
}

#[test]
fn exhaustive_finds_lost_update() {
    let out = explore(&Config::exhaustive(), racy_counter);
    let f = out.assert_fail();
    assert_eq!(f.kind, FailureKind::Panic);
    assert!(f.message.contains("lost update"), "got: {}", f.message);
    // The reported plan replays the same failure.
    let again = replay_plan(&Config::exhaustive(), &f.plan, racy_counter);
    let f2 = again.assert_fail();
    assert_eq!(f2.kind, FailureKind::Panic);
    assert_eq!(f2.message, f.message);
}

#[test]
fn preemption_bound_one_still_finds_lost_update() {
    // One preemption (break the second RMW between load and store) is
    // enough, so the CHESS-style bound does not hide the bug.
    let out = explore(&Config::with_preemption_bound(1), racy_counter);
    assert_eq!(out.assert_fail().kind, FailureKind::Panic);
}

#[test]
fn deadlock_detection_catches_lost_wakeup() {
    let out = explore(&Config::exhaustive(), lost_wakeup);
    let f = out.assert_fail();
    assert_eq!(f.kind, FailureKind::Deadlock);
    assert!(f.message.contains("deadlock"), "got: {}", f.message);
}

#[test]
fn random_exploration_reports_a_replayable_seed() {
    let out = explore_random(&Config::default(), 500, 0xC0FFEE, lost_wakeup);
    let f = out.assert_fail().clone();
    let seed = f.seed.expect("random failures carry their sub-seed");
    // Seeded replay reproduces the identical schedule: same kind, same
    // message, same decision trail.
    let again = replay_seed(&Config::default(), seed, lost_wakeup);
    let f2 = again.assert_fail();
    assert_eq!(f2.kind, f.kind);
    assert_eq!(f2.message, f.message);
    assert_eq!(f2.plan, f.plan);
}

#[test]
fn mutex_provides_mutual_exclusion() {
    // A plain (non-atomic) counter under the model mutex: correct under
    // every interleaving, proving the model lock actually excludes.
    let body = || {
        let counter = Arc::new(Mutex::new(0u64));
        let c2 = Arc::clone(&counter);
        let t = interleave::thread::spawn(move || {
            let mut g = c2.lock();
            *g += 1;
        });
        {
            let mut g = counter.lock();
            *g += 1;
        }
        t.join().unwrap();
        assert_eq!(*counter.lock(), 2);
    };
    let rep = explore(&Config::exhaustive(), body);
    assert!(rep.assert_pass().complete);
}

#[test]
fn condvar_handshake_completes_under_all_interleavings() {
    let body = || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = interleave::thread::spawn(move || {
            let mut flag = p2.0.lock();
            *flag = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            g = pair.1.wait(g);
        }
        drop(g);
        t.join().unwrap();
    };
    let rep = explore(&Config::exhaustive(), body);
    assert!(rep.assert_pass().complete);
}

#[test]
fn rwlock_readers_never_see_torn_writes() {
    let body = || {
        // The writer keeps (a, b) congruent (b == 2a); a reader observing
        // anything else saw a torn update.
        let cell = Arc::new(RwLock::new((1u64, 2u64)));
        let c2 = Arc::clone(&cell);
        let w = interleave::thread::spawn(move || {
            let mut g = c2.write();
            g.0 = 5;
            g.1 = 10;
        });
        {
            let g = cell.read();
            assert_eq!(g.1, 2 * g.0, "torn read: {:?}", *g);
        }
        w.join().unwrap();
    };
    let rep = explore(&Config::exhaustive(), body);
    assert!(rep.assert_pass().complete);
}

#[test]
fn shims_pass_through_outside_a_model() {
    // No model run installed: the same types behave as std primitives.
    let m = Mutex::new(3u32);
    {
        let mut g = m.lock();
        *g += 1;
    }
    assert_eq!(*m.lock(), 4);
    let rw = RwLock::new(7u32);
    assert_eq!(*rw.read(), 7);
    *rw.write() = 8;
    assert_eq!(rw.into_inner(), 8);
    let a = AtomicUsize::new(1);
    assert_eq!(a.fetch_add(2, Ordering::SeqCst), 1);
    let t = interleave::thread::spawn(|| 42u8);
    assert_eq!(t.join().unwrap(), 42);
}

#[test]
fn outcome_accessors_expose_counts() {
    match explore(&Config::exhaustive(), correct_counter) {
        Outcome::Pass(rep) => {
            assert!(rep.schedules >= 2);
            assert!(rep.max_decisions > 0);
        }
        Outcome::Fail(f) => panic!("unexpected failure: {}", f.message),
    }
}
