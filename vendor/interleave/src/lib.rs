//! Deterministic interleaving explorer for hand-rolled concurrency.
//!
//! The build environment is offline, so this is a vendored, self-contained
//! stand-in for a [loom](https://crates.io/crates/loom)-style model checker,
//! scoped to exactly what the PEANUT serving stack needs verified: the
//! worker pool's submit/park/claim/panic/join protocol and the epoch-swap
//! path, built from `Mutex` + `Condvar` + `RwLock` + atomics + `spawn`.
//!
//! # How it works
//!
//! A *model run* ([`explore`], [`explore_random`], [`replay_plan`],
//! [`replay_seed`]) executes a closure many times. Inside the closure, the
//! shim types in [`sync`], [`atomic`] and [`thread`] are **controlled**: a
//! scheduler lets exactly one thread run at a time, and every instrumented
//! operation (lock, unlock, condvar wait/notify, atomic access, spawn,
//! join) is a *decision point* where the scheduler chooses which runnable
//! thread proceeds. Enumerating those choices enumerates interleavings.
//!
//! * [`explore`] — depth-first, **exhaustive up to a preemption bound**
//!   (CHESS-style): schedules that preempt a still-runnable thread more
//!   than `preemption_bound` times are pruned; with
//!   [`Config::exhaustive`] the bound is lifted and the full interleaving
//!   space of the closure is enumerated. Every completed exploration
//!   reports how many schedules it ran.
//! * [`explore_random`] — seeded random schedules; each iteration derives
//!   its own sub-seed, and a failure reports the exact sub-seed so
//!   [`replay_seed`] re-runs the *identical* schedule.
//! * A failing schedule is also reported as a decision plan
//!   ([`Failure::plan`]) replayable with [`replay_plan`], independent of
//!   how it was found.
//!
//! Detected failures: panics in controlled threads (assertion failures),
//! **deadlocks** (no runnable thread while some are blocked — e.g. a lost
//! wakeup), livelocks (step-limit exhaustion), and replay divergence.
//!
//! # What it does *not* model
//!
//! The scheduler is sequentially consistent: it explores *interleavings*,
//! not weak-memory reorderings, and `Ordering` arguments are accepted but
//! not weakened. Relaxed-ordering and data-race bugs are covered by the
//! Miri and ThreadSanitizer CI jobs instead; this crate covers protocol
//! bugs (lost wakeups, missed completions, double claims, join leaks),
//! which survive even under SC. Condvar waits never wake spuriously
//! (callers must be `while`-loop correct anyway), and `notify_one` wakes
//! the longest-waiting thread deterministically.
//!
//! # Rules for model bodies
//!
//! * Construct everything — threads, pools, locks — *inside* the closure;
//!   a controlled thread must never share a shim object with an
//!   uncontrolled one.
//! * The closure must be deterministic given the schedule (no time, no
//!   ambient randomness), or replay diverges.
//! * On a detected failure the run's threads are frozen mid-protocol and
//!   intentionally leaked (they may hold borrows that unwinding would
//!   invalidate); a failure is terminal for the process's exploration.

#![forbid(unsafe_code)]

pub mod atomic;
mod rng;
mod sched;
pub mod sync;
pub mod thread;

pub use sched::{
    explore, explore_random, replay_plan, replay_seed, Config, Failure, FailureKind, Outcome,
    Report,
};
