//! Instrumented `Mutex`, `Condvar` and `RwLock`.
//!
//! The API is deliberately **non-poisoning** (`lock()` returns the guard
//! directly): the serving stack's protocols contain panics at the task
//! boundary and never rely on poisoning, and a poison-free signature keeps
//! `unwrap`/`expect` off the hot paths. Outside a model run the shims
//! delegate to `std` (recovering poisoned locks via
//! `PoisonError::into_inner`); inside one, a model-level gate decides who
//! may hold the lock, and the inner `std` lock is then taken uncontended —
//! it still provides the *memory* synchronization, while the scheduler
//! provides (and explores) the *blocking* behavior.
//!
//! Identity: the model keys its bookkeeping on the address of the inner
//! `std` primitive. A lock or condvar must therefore not be moved while
//! any model thread holds or waits on it — guaranteed by borrow rules for
//! holders, and by the `Arc`-shared usage pattern for condvar waiters.

use crate::sched;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// Instrumented mutual-exclusion lock (non-poisoning API).
#[derive(Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releases (and, in a model, wakes waiters) on drop.
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Acquires the lock, blocking (in model time, under a model run)
    /// until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match sched::current() {
            Some(ctx) => {
                ctx.lock_acquire(self.id());
                let inner = self
                    .inner
                    .try_lock()
                    .expect("interleave model gate granted a std-locked mutex");
                MutexGuard {
                    mutex: self,
                    inner: Some(inner),
                    model: true,
                }
            }
            None => MutexGuard {
                mutex: self,
                inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
                model: false,
            },
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::fmt::Debug for Mutex<T> {
    // Opaque on purpose: peeking at the value would need the lock, and
    // formatting must never become a model decision point.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            if self.model {
                if let Some(ctx) = sched::current() {
                    ctx.lock_release(self.mutex.id());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Instrumented condition variable. Model waits never wake spuriously;
/// `notify_one` deterministically wakes the longest-waiting thread.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Atomically releases the guard's mutex and waits for a notification,
    /// re-acquiring the mutex before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.mutex;
        let mut g = guard;
        let std_guard = g.inner.take().expect("guard holds the lock");
        let was_model = g.model;
        g.model = false; // neutered: the model release happens in cond_wait
        drop(g);
        match sched::current() {
            Some(ctx) if was_model => {
                drop(std_guard);
                ctx.cond_wait(self.id(), mutex.id());
                let inner = mutex
                    .inner
                    .try_lock()
                    .expect("interleave model gate granted a std-locked mutex");
                MutexGuard {
                    mutex,
                    inner: Some(inner),
                    model: true,
                }
            }
            _ => MutexGuard {
                mutex,
                inner: Some(
                    self.inner
                        .wait(std_guard)
                        .unwrap_or_else(PoisonError::into_inner),
                ),
                model: false,
            },
        }
    }

    /// Wakes all current waiters.
    pub fn notify_all(&self) {
        match sched::current() {
            Some(ctx) => ctx.cond_notify(self.id(), true),
            None => self.inner.notify_all(),
        }
    }

    /// Wakes one waiter (in a model: the longest-waiting one).
    pub fn notify_one(&self) {
        match sched::current() {
            Some(ctx) => ctx.cond_notify(self.id(), false),
            None => self.inner.notify_one(),
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// Instrumented reader-writer lock (non-poisoning API).
#[derive(Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: bool,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: bool,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match sched::current() {
            Some(ctx) => {
                ctx.rw_acquire(self.id(), false);
                let inner = self
                    .inner
                    .try_read()
                    .expect("interleave model gate granted a write-locked rwlock");
                RwLockReadGuard {
                    lock: self,
                    inner: Some(inner),
                    model: true,
                }
            }
            None => RwLockReadGuard {
                lock: self,
                inner: Some(self.inner.read().unwrap_or_else(PoisonError::into_inner)),
                model: false,
            },
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match sched::current() {
            Some(ctx) => {
                ctx.rw_acquire(self.id(), true);
                let inner = self
                    .inner
                    .try_write()
                    .expect("interleave model gate granted a held rwlock");
                RwLockWriteGuard {
                    lock: self,
                    inner: Some(inner),
                    model: true,
                }
            }
            None => RwLockWriteGuard {
                lock: self,
                inner: Some(self.inner.write().unwrap_or_else(PoisonError::into_inner)),
                model: false,
            },
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            if self.model {
                if let Some(ctx) = sched::current() {
                    ctx.rw_release(self.lock.id(), false);
                }
            }
        }
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            if self.model {
                if let Some(ctx) = sched::current() {
                    ctx.rw_release(self.lock.id(), true);
                }
            }
        }
    }
}
