//! Instrumented atomics: every access is a decision point under a model
//! run, and a plain `std` atomic operation otherwise.
//!
//! The model executes one thread at a time under sequential consistency,
//! so the `Ordering` argument is forwarded to the inner atomic but adds no
//! extra behaviors to explore — weak-memory effects are the Miri/TSan
//! jobs' coverage, not this crate's (see the crate docs).

pub use std::sync::atomic::Ordering;

use crate::sched;

fn op_point() {
    if let Some(ctx) = sched::current() {
        ctx.op_point();
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ty, $ty:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name {
            inner: $std,
        }

        impl std::fmt::Debug for $name {
            // No `op_point()`: formatting is diagnostics, not protocol.
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(value: $ty) -> Self {
                Self { inner: <$std>::new(value) }
            }

            /// Atomic load (a model decision point).
            pub fn load(&self, order: Ordering) -> $ty {
                op_point();
                self.inner.load(order)
            }

            /// Atomic store (a model decision point).
            pub fn store(&self, value: $ty, order: Ordering) {
                op_point();
                self.inner.store(value, order);
            }

            /// Atomic fetch-add (a model decision point).
            pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                op_point();
                self.inner.fetch_add(value, order)
            }

            /// Atomic fetch-sub (a model decision point).
            pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                op_point();
                self.inner.fetch_sub(value, order)
            }

            /// Atomic fetch-or (a model decision point).
            pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                op_point();
                self.inner.fetch_or(value, order)
            }

            /// Atomic fetch-and (a model decision point).
            pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                op_point();
                self.inner.fetch_and(value, order)
            }

            /// Atomic swap (a model decision point).
            pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                op_point();
                self.inner.swap(value, order)
            }

            /// Atomic compare-exchange (a model decision point).
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                op_point();
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

int_atomic!(
    /// Instrumented `AtomicUsize`.
    AtomicUsize,
    std::sync::atomic::AtomicUsize,
    usize
);
int_atomic!(
    /// Instrumented `AtomicU64`.
    AtomicU64,
    std::sync::atomic::AtomicU64,
    u64
);

/// Instrumented `AtomicBool`.
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for AtomicBool {
    // No `op_point()`: formatting is diagnostics, not protocol.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Atomic load (a model decision point).
    pub fn load(&self, order: Ordering) -> bool {
        op_point();
        self.inner.load(order)
    }

    /// Atomic store (a model decision point).
    pub fn store(&self, value: bool, order: Ordering) {
        op_point();
        self.inner.store(value, order);
    }

    /// Atomic swap (a model decision point).
    pub fn swap(&self, value: bool, order: Ordering) -> bool {
        op_point();
        self.inner.swap(value, order)
    }
}
