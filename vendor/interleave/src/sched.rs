//! The scheduler: one controlled thread runs at a time; every instrumented
//! operation asks the scheduler who runs next, and the explorer enumerates
//! those answers.
//!
//! Controlled threads are real OS threads parked on per-thread condvars;
//! "only one runs" is a property the scheduler enforces, not an assumption.
//! All bookkeeping (lock owners, condvar wait sets, thread statuses, the
//! decision trail) lives in one `State` behind one std mutex, so every
//! transition — release a lock *and* wake its waiters *and* pick the next
//! thread — is atomic with respect to the model.

use crate::rng::{derive_seed, SplitMix64};
use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Exploration limits.
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum number of times a schedule may preempt a still-runnable
    /// thread (`None` = unbounded, i.e. truly exhaustive). Switches away
    /// from a *blocked* or finished thread are always free, so every
    /// schedule a correct program needs is reachable at any bound; the
    /// bound only caps adversarial preemption depth (CHESS-style).
    pub preemption_bound: Option<usize>,
    /// Hard cap on schedules explored; hitting it yields `complete: false`.
    pub max_schedules: u64,
    /// Per-schedule cap on decision points — exceeding it is reported as a
    /// livelock.
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: Some(2),
            max_schedules: 500_000,
            max_steps: 200_000,
        }
    }
}

impl Config {
    /// A configuration with the given preemption bound.
    pub fn with_preemption_bound(bound: usize) -> Self {
        Config {
            preemption_bound: Some(bound),
            ..Config::default()
        }
    }

    /// No preemption bound: enumerate the complete interleaving space.
    /// Feasible only for small protocols — schedule counts grow
    /// factorially with decision points.
    pub fn exhaustive() -> Self {
        Config {
            preemption_bound: None,
            ..Config::default()
        }
    }
}

/// Why a schedule failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// A controlled thread panicked outside any `catch_unwind` (assertion
    /// failures in the model body land here).
    Panic,
    /// No thread was runnable while at least one was blocked — a lost
    /// wakeup, missed unlock, or circular wait.
    Deadlock,
    /// The step limit was exhausted (livelock or unbounded spinning).
    StepLimit,
    /// A replayed plan diverged from the recorded decision structure —
    /// the model body is not deterministic under the schedule.
    Nondeterminism,
}

/// A failing schedule, replayable two ways: by decision `plan`
/// ([`replay_plan`]) or — when found by [`explore_random`] — by `seed`
/// ([`replay_seed`]).
#[derive(Clone, Debug)]
pub struct Failure {
    /// Schedules executed up to and including the failing one.
    pub schedules: u64,
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable description (panic message, blocked-thread list, …).
    pub message: String,
    /// The failing schedule as the sequence of decision indices taken.
    pub plan: Vec<usize>,
    /// The exact sub-seed of the failing iteration, when the schedule came
    /// from [`explore_random`].
    pub seed: Option<u64>,
}

/// A completed exploration with no failure found.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Interleavings executed.
    pub schedules: u64,
    /// Whether the bounded space was fully enumerated (`false` when
    /// `max_schedules` stopped the search, and always `false` for random
    /// exploration, which samples rather than enumerates).
    pub complete: bool,
    /// Length of the longest decision trail seen.
    pub max_decisions: usize,
}

/// The result of a model run.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// No schedule failed.
    Pass(Report),
    /// A failing schedule was found.
    Fail(Failure),
}

impl Outcome {
    /// The report, panicking with the failure's message and replay plan if
    /// any schedule failed.
    #[track_caller]
    pub fn assert_pass(&self) -> &Report {
        match self {
            Outcome::Pass(r) => r,
            Outcome::Fail(f) => panic!(
                "model check failed after {} schedule(s): {:?}: {}\nreplay plan: {:?}{}",
                f.schedules,
                f.kind,
                f.message,
                f.plan,
                f.seed
                    .map(|s| format!("\nreplay seed: {s}"))
                    .unwrap_or_default()
            ),
        }
    }

    /// The failure, panicking if every schedule passed.
    #[track_caller]
    pub fn assert_fail(&self) -> &Failure {
        match self {
            Outcome::Fail(f) => f,
            Outcome::Pass(r) => panic!(
                "model check unexpectedly passed ({} schedule(s), complete: {})",
                r.schedules, r.complete
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// scheduler internals
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockOn),
    Finished,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockOn {
    /// Waiting to acquire the lock (mutex or rwlock) with this id.
    Lock(usize),
    /// In the wait set of the condvar with this id.
    Cond(usize),
    /// Waiting for the thread with this tid to finish.
    Join(usize),
}

struct Th {
    status: Status,
    cv: Arc<Condvar>,
}

/// One scheduling decision: which runnable thread ran, out of which
/// options, and whether taking a non-default option would preempt.
#[derive(Clone, Debug)]
struct Decision {
    /// Candidate tids in canonical order: the previously active thread
    /// first when still runnable, then the rest ascending.
    options: Vec<usize>,
    /// Index into `options` actually taken.
    chosen: usize,
    /// Whether the previously active thread was still runnable (so any
    /// other choice is a preemption).
    prev_runnable: bool,
    /// Preemptions accumulated before this decision.
    preemptions_before: usize,
}

#[derive(Default)]
struct LockSt {
    owner: Option<usize>,
    waiters: Vec<usize>,
}

#[derive(Default)]
struct RwSt {
    readers: Vec<usize>,
    writer: Option<usize>,
    waiters: Vec<usize>,
}

enum Strategy {
    /// Follow `plan`, then take option 0 (run-to-block) — the DFS leaf.
    Planned,
    /// Choose every decision from a seeded stream.
    Random(SplitMix64),
}

#[derive(Clone, Debug)]
enum RunEnd {
    Complete,
    Fail { kind: FailureKind, message: String },
}

struct State {
    threads: Vec<Th>,
    active: usize,
    /// Set when the run is over (completed or failed): no further
    /// scheduling happens and parked threads stay parked.
    frozen: bool,
    outcome: Option<RunEnd>,
    steps: usize,
    decisions: Vec<Decision>,
    plan: Vec<usize>,
    cursor: usize,
    strategy: Strategy,
    preemptions: usize,
    max_steps: usize,
    locks: HashMap<usize, LockSt>,
    rwlocks: HashMap<usize, RwSt>,
    conds: HashMap<usize, Vec<usize>>,
}

pub(crate) struct Sched {
    state: Mutex<State>,
    /// Signalled when `outcome` is set; the explorer waits on it.
    driver: Condvar,
}

fn lock_state(sched: &Sched) -> MutexGuard<'_, State> {
    // A controlled thread can only poison this mutex by panicking inside
    // the scheduler itself; the state stays structurally valid, and the
    // explorer surfaces the panic as a failure.
    sched.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Sched {
    /// Picks who runs next. `prev` is the thread that hit the decision
    /// point; its status has already been updated by the caller.
    fn pick_next(&self, st: &mut State, prev: usize) {
        if st.frozen {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(
                st,
                FailureKind::StepLimit,
                format!("exceeded {} decision points in one schedule", st.max_steps),
            );
            return;
        }
        let mut options: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if options.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.outcome = Some(RunEnd::Complete);
                st.frozen = true;
                self.driver.notify_all();
            } else {
                // Raw ids are addresses (unstable across runs); intern
                // them in tid order so replayed failures format byte-for-
                // byte identically to the original run.
                let mut interned: Vec<usize> = Vec::new();
                let mut small = |raw: usize| match interned.iter().position(|&r| r == raw) {
                    Some(i) => i,
                    None => {
                        interned.push(raw);
                        interned.len() - 1
                    }
                };
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match &t.status {
                        Status::Blocked(b) => Some(format!(
                            "t{i} on {}",
                            match *b {
                                BlockOn::Lock(id) => format!("Lock(#{})", small(id)),
                                BlockOn::Cond(id) => format!("Cond(#{})", small(id)),
                                BlockOn::Join(tid) => format!("Join(t{tid})"),
                            }
                        )),
                        _ => None,
                    })
                    .collect();
                self.fail(
                    st,
                    FailureKind::Deadlock,
                    format!(
                        "deadlock: no runnable thread; blocked: [{}]",
                        blocked.join(", ")
                    ),
                );
            }
            return;
        }
        let prev_runnable = st.threads[prev].status == Status::Runnable;
        if prev_runnable {
            options.retain(|&t| t != prev);
            options.insert(0, prev);
        }
        let chosen = if st.cursor < st.plan.len() {
            let c = st.plan[st.cursor];
            if c >= options.len() {
                let msg = format!(
                    "replay diverged at decision {}: plan chose option {} of {}",
                    st.cursor,
                    c,
                    options.len()
                );
                self.fail(st, FailureKind::Nondeterminism, msg);
                return;
            }
            c
        } else {
            match &mut st.strategy {
                Strategy::Planned => 0,
                Strategy::Random(rng) => (rng.next_u64() % options.len() as u64) as usize,
            }
        };
        st.decisions.push(Decision {
            options: options.clone(),
            chosen,
            prev_runnable,
            preemptions_before: st.preemptions,
        });
        if prev_runnable && options[chosen] != prev {
            st.preemptions += 1;
        }
        st.cursor += 1;
        let next = options[chosen];
        st.active = next;
        if next != prev {
            st.threads[next].cv.notify_all();
        }
    }

    fn fail(&self, st: &mut State, kind: FailureKind, message: String) {
        if st.outcome.is_none() {
            st.outcome = Some(RunEnd::Fail { kind, message });
        }
        st.frozen = true;
        self.driver.notify_all();
    }

    /// Parks until it is `me`'s turn. On a frozen run this never returns:
    /// the thread stays parked forever and is leaked with the run.
    fn wait_turn<'a>(&'a self, mut st: MutexGuard<'a, State>, me: usize) -> MutexGuard<'a, State> {
        let cv = Arc::clone(&st.threads[me].cv);
        while st.frozen || st.active != me || st.threads[me].status != Status::Runnable {
            st = cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st
    }

    /// A decision point where `me` stays runnable: the scheduler may keep
    /// running `me` (free) or preempt to another runnable thread.
    fn yield_turn<'a>(&'a self, mut st: MutexGuard<'a, State>, me: usize) -> MutexGuard<'a, State> {
        self.pick_next(&mut st, me);
        if !st.frozen && st.active == me && st.threads[me].status == Status::Runnable {
            return st;
        }
        self.wait_turn(st, me)
    }
}

// ---------------------------------------------------------------------------
// per-thread context (TLS)
// ---------------------------------------------------------------------------

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The controlled-thread handle the shims act through: present in TLS only
/// on threads that belong to an in-progress model run. Absent ⇒ the shims
/// pass straight through to `std`.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Sched>,
    pub(crate) tid: usize,
}

pub(crate) fn current() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// Installs a controlled-thread context in TLS (child trampoline).
pub(crate) fn install(ctx: Ctx) {
    set_ctx(Some(ctx));
}

/// Clears the TLS context (thread leaving its model run).
pub(crate) fn uninstall() {
    set_ctx(None);
}

impl Ctx {
    /// A plain decision point (atomic access, notify, spawn, …).
    pub(crate) fn op_point(&self) {
        let st = lock_state(&self.sched);
        drop(self.sched.yield_turn(st, self.tid));
    }

    /// Model-acquires the mutex with id `id`, blocking (in model time)
    /// while another thread owns it.
    pub(crate) fn lock_acquire(&self, id: usize) {
        let me = self.tid;
        let st = lock_state(&self.sched);
        let mut st = self.sched.yield_turn(st, me);
        loop {
            let entry = st.locks.entry(id).or_default();
            if entry.owner.is_none() {
                entry.owner = Some(me);
                return;
            }
            entry.waiters.push(me);
            st.threads[me].status = Status::Blocked(BlockOn::Lock(id));
            self.sched.pick_next(&mut st, me);
            st = self.sched.wait_turn(st, me);
        }
    }

    /// Model-releases the mutex `id`, waking its waiters to re-contend.
    pub(crate) fn lock_release(&self, id: usize) {
        let me = self.tid;
        let mut st = lock_state(&self.sched);
        let entry = st.locks.entry(id).or_default();
        debug_assert_eq!(entry.owner, Some(me), "release of a lock not held");
        entry.owner = None;
        let woken: Vec<usize> = entry.waiters.drain(..).collect();
        for w in woken {
            st.threads[w].status = Status::Runnable;
        }
        drop(self.sched.yield_turn(st, me));
    }

    /// Condvar wait: atomically releases mutex `lock_id`, enters the wait
    /// set of `cond_id`, and — once notified — re-acquires the mutex.
    pub(crate) fn cond_wait(&self, cond_id: usize, lock_id: usize) {
        let me = self.tid;
        let mut st = lock_state(&self.sched);
        let entry = st.locks.entry(lock_id).or_default();
        debug_assert_eq!(entry.owner, Some(me), "condvar wait without the lock");
        entry.owner = None;
        let woken: Vec<usize> = entry.waiters.drain(..).collect();
        for w in woken {
            st.threads[w].status = Status::Runnable;
        }
        st.conds.entry(cond_id).or_default().push(me);
        st.threads[me].status = Status::Blocked(BlockOn::Cond(cond_id));
        self.sched.pick_next(&mut st, me);
        st = self.sched.wait_turn(st, me);
        // Notified: re-acquire the mutex before returning to the caller.
        loop {
            let entry = st.locks.entry(lock_id).or_default();
            if entry.owner.is_none() {
                entry.owner = Some(me);
                return;
            }
            entry.waiters.push(me);
            st.threads[me].status = Status::Blocked(BlockOn::Lock(lock_id));
            self.sched.pick_next(&mut st, me);
            st = self.sched.wait_turn(st, me);
        }
    }

    /// Condvar notify: wakes all waiters (or the longest-waiting one);
    /// they re-contend for their mutex when scheduled.
    pub(crate) fn cond_notify(&self, cond_id: usize, all: bool) {
        let me = self.tid;
        let mut st = lock_state(&self.sched);
        let waiters = st.conds.entry(cond_id).or_default();
        let woken: Vec<usize> = if all {
            std::mem::take(waiters)
        } else if waiters.is_empty() {
            Vec::new()
        } else {
            vec![waiters.remove(0)]
        };
        for w in woken {
            st.threads[w].status = Status::Runnable;
        }
        drop(self.sched.yield_turn(st, me));
    }

    /// Model-acquires rwlock `id` for reading or writing.
    pub(crate) fn rw_acquire(&self, id: usize, write: bool) {
        let me = self.tid;
        let st = lock_state(&self.sched);
        let mut st = self.sched.yield_turn(st, me);
        loop {
            let entry = st.rwlocks.entry(id).or_default();
            let free = if write {
                entry.writer.is_none() && entry.readers.is_empty()
            } else {
                entry.writer.is_none()
            };
            if free {
                if write {
                    entry.writer = Some(me);
                } else {
                    entry.readers.push(me);
                }
                return;
            }
            entry.waiters.push(me);
            st.threads[me].status = Status::Blocked(BlockOn::Lock(id));
            self.sched.pick_next(&mut st, me);
            st = self.sched.wait_turn(st, me);
        }
    }

    /// Model-releases rwlock `id`.
    pub(crate) fn rw_release(&self, id: usize, write: bool) {
        let me = self.tid;
        let mut st = lock_state(&self.sched);
        let entry = st.rwlocks.entry(id).or_default();
        if write {
            debug_assert_eq!(entry.writer, Some(me), "write-release without the lock");
            entry.writer = None;
        } else {
            let pos = entry.readers.iter().position(|&r| r == me);
            debug_assert!(pos.is_some(), "read-release without the lock");
            if let Some(p) = pos {
                entry.readers.swap_remove(p);
            }
        }
        let woken: Vec<usize> = entry.waiters.drain(..).collect();
        for w in woken {
            st.threads[w].status = Status::Runnable;
        }
        drop(self.sched.yield_turn(st, me));
    }

    /// Registers a child thread (runnable, not yet started). No decision
    /// point: the caller spawns the OS thread first, *then* yields, so the
    /// scheduler can never pick a thread whose OS body does not exist yet.
    pub(crate) fn register_child(&self) -> usize {
        let mut st = lock_state(&self.sched);
        let tid = st.threads.len();
        st.threads.push(Th {
            status: Status::Runnable,
            cv: Arc::new(Condvar::new()),
        });
        tid
    }

    /// First park of a child thread: waits until the scheduler picks it.
    pub(crate) fn wait_first(&self) {
        let st = lock_state(&self.sched);
        drop(self.sched.wait_turn(st, self.tid));
    }

    /// Blocks (in model time) until thread `target` finishes.
    pub(crate) fn join(&self, target: usize) {
        let me = self.tid;
        let st = lock_state(&self.sched);
        let mut st = self.sched.yield_turn(st, me);
        if st.threads[target].status != Status::Finished {
            st.threads[me].status = Status::Blocked(BlockOn::Join(target));
            self.sched.pick_next(&mut st, me);
            st = self.sched.wait_turn(st, me);
        }
        debug_assert_eq!(st.threads[target].status, Status::Finished);
    }

    /// Marks this thread finished (or the run failed, if it panicked),
    /// wakes joiners, and schedules the next thread. The OS thread exits
    /// right after.
    pub(crate) fn finish(&self, panic_msg: Option<String>) {
        let me = self.tid;
        let mut st = lock_state(&self.sched);
        if let Some(msg) = panic_msg {
            self.sched.fail(
                &mut st,
                FailureKind::Panic,
                format!("thread t{me} panicked: {msg}"),
            );
            return;
        }
        st.threads[me].status = Status::Finished;
        for t in st.threads.iter_mut() {
            if t.status == Status::Blocked(BlockOn::Join(me)) {
                t.status = Status::Runnable;
            }
        }
        self.sched.pick_next(&mut st, me);
    }
}

pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// single-run driver
// ---------------------------------------------------------------------------

struct RunResult {
    decisions: Vec<Decision>,
    end: RunEnd,
}

fn run_once(
    cfg: &Config,
    plan: Vec<usize>,
    strategy: Strategy,
    body: &Arc<dyn Fn() + Send + Sync>,
) -> RunResult {
    let sched = Arc::new(Sched {
        state: Mutex::new(State {
            threads: vec![Th {
                status: Status::Runnable,
                cv: Arc::new(Condvar::new()),
            }],
            active: 0,
            frozen: false,
            outcome: None,
            steps: 0,
            decisions: Vec::new(),
            plan,
            cursor: 0,
            strategy,
            preemptions: 0,
            max_steps: cfg.max_steps,
            locks: HashMap::new(),
            rwlocks: HashMap::new(),
            conds: HashMap::new(),
        }),
        driver: Condvar::new(),
    });
    let b = Arc::clone(body);
    let s = Arc::clone(&sched);
    let root = std::thread::Builder::new()
        .name("interleave-root".to_string())
        .spawn(move || {
            let ctx = Ctx {
                sched: Arc::clone(&s),
                tid: 0,
            };
            set_ctx(Some(ctx.clone()));
            let r = catch_unwind(AssertUnwindSafe(|| b()));
            ctx.finish(r.as_ref().err().map(|p| panic_message(p.as_ref())));
            set_ctx(None);
        })
        .expect("spawn interleave root thread");

    let end;
    let decisions;
    {
        let mut st = lock_state(&sched);
        while st.outcome.is_none() {
            st = sched
                .driver
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        end = st.outcome.clone().unwrap_or(RunEnd::Complete);
        decisions = std::mem::take(&mut st.decisions);
    }
    match end {
        RunEnd::Complete => {
            // Every controlled thread has exited (children are joined by
            // the model body; the root just finished).
            let _ = root.join();
        }
        RunEnd::Fail { .. } => {
            // Frozen threads stay parked mid-protocol; detach and leak
            // them deliberately (see the crate docs).
            drop(root);
        }
    }
    RunResult { decisions, end }
}

fn plan_of(decisions: &[Decision]) -> Vec<usize> {
    decisions.iter().map(|d| d.chosen).collect()
}

// ---------------------------------------------------------------------------
// explorers
// ---------------------------------------------------------------------------

/// Depth-first exhaustive exploration (up to `cfg.preemption_bound`).
/// Runs `body` once per schedule; returns the first failure, or a
/// [`Report`] with the number of interleavings enumerated.
pub fn explore<F>(cfg: &Config, body: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut plan: Vec<usize> = Vec::new();
    let mut schedules = 0u64;
    let mut max_decisions = 0usize;
    loop {
        let run = run_once(cfg, plan.clone(), Strategy::Planned, &body);
        schedules += 1;
        max_decisions = max_decisions.max(run.decisions.len());
        if let RunEnd::Fail { kind, message } = run.end {
            return Outcome::Fail(Failure {
                schedules,
                kind,
                message,
                plan: plan_of(&run.decisions),
                seed: None,
            });
        }
        if schedules >= cfg.max_schedules {
            return Outcome::Pass(Report {
                schedules,
                complete: false,
                max_decisions,
            });
        }
        // Backtrack: deepest decision with an untried option affordable
        // under the preemption bound.
        let mut ds = run.decisions;
        let next_plan = loop {
            let Some(d) = ds.pop() else { break None };
            let next = d.chosen + 1;
            if next < d.options.len() {
                let cost = usize::from(d.prev_runnable);
                let affordable = cfg
                    .preemption_bound
                    .is_none_or(|b| d.preemptions_before + cost <= b);
                if affordable {
                    let mut p = plan_of(&ds);
                    p.push(next);
                    break Some(p);
                }
            }
        };
        match next_plan {
            Some(p) => plan = p,
            None => {
                return Outcome::Pass(Report {
                    schedules,
                    complete: true,
                    max_decisions,
                })
            }
        }
    }
}

/// Random exploration: `iterations` schedules, each driven by a sub-seed
/// derived from `seed`. A failure reports the exact sub-seed for
/// [`replay_seed`].
pub fn explore_random<F>(cfg: &Config, iterations: u64, seed: u64, body: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let mut max_decisions = 0usize;
    for i in 0..iterations {
        let sub = derive_seed(seed, i);
        let run = run_once(
            cfg,
            Vec::new(),
            Strategy::Random(SplitMix64::new(sub)),
            &body,
        );
        max_decisions = max_decisions.max(run.decisions.len());
        if let RunEnd::Fail { kind, message } = run.end {
            return Outcome::Fail(Failure {
                schedules: i + 1,
                kind,
                message,
                plan: plan_of(&run.decisions),
                seed: Some(sub),
            });
        }
    }
    Outcome::Pass(Report {
        schedules: iterations,
        complete: false,
        max_decisions,
    })
}

/// Re-runs the single schedule identified by `seed` (as reported in
/// [`Failure::seed`]). Deterministic: the same seed replays the same
/// decisions, byte for byte.
pub fn replay_seed<F>(cfg: &Config, seed: u64, body: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let run = run_once(
        cfg,
        Vec::new(),
        Strategy::Random(SplitMix64::new(seed)),
        &body,
    );
    finish_single(run, Some(seed))
}

/// Re-runs the single schedule described by a decision `plan` (as reported
/// in [`Failure::plan`]).
pub fn replay_plan<F>(cfg: &Config, plan: &[usize], body: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);
    let run = run_once(cfg, plan.to_vec(), Strategy::Planned, &body);
    finish_single(run, None)
}

fn finish_single(run: RunResult, seed: Option<u64>) -> Outcome {
    match run.end {
        RunEnd::Complete => Outcome::Pass(Report {
            schedules: 1,
            complete: false,
            max_decisions: run.decisions.len(),
        }),
        RunEnd::Fail { kind, message } => Outcome::Fail(Failure {
            schedules: 1,
            kind,
            message,
            plan: plan_of(&run.decisions),
            seed,
        }),
    }
}
