//! Instrumented thread spawn/join.
//!
//! Under a model run, `spawn` registers a controlled thread with the
//! scheduler: the OS thread is created immediately but parks until the
//! scheduler picks it, and `JoinHandle::join` blocks in *model* time (a
//! decision point) before reaping the OS thread. Outside a model run both
//! delegate to `std`.
//!
//! `scope` (and scoped spawns) are re-exported from `std` **without**
//! instrumentation: scoped threads are join-before-return by construction,
//! and the protocols this crate exists to check (the persistent worker
//! pool) do not use them. Do not spawn scoped threads inside a model body
//! and have them touch model-shared state.

pub use std::thread::{available_parallelism, scope, sleep, yield_now, Scope, ScopedJoinHandle};

use crate::sched::{self, panic_message, Ctx};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

/// Result of joining a thread, as in `std`.
pub type Result<T> = std::thread::Result<T>;

/// Thread factory mirroring `std::thread::Builder` (name only).
#[derive(Debug, Default)]
pub struct Builder {
    inner: Option<String>,
}

/// Handle to spawn a thread with.
impl Builder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread-to-be.
    pub fn name(mut self, name: String) -> Self {
        self.inner = Some(name);
        self
    }

    /// Spawns the thread — controlled when called from inside a model run,
    /// a plain `std` thread otherwise.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let mut builder = std::thread::Builder::new();
        if let Some(name) = self.inner {
            builder = builder.name(name);
        }
        match sched::current() {
            Some(ctx) => {
                let tid = ctx.register_child();
                let slot: Arc<Mutex<Option<Result<T>>>> = Arc::new(Mutex::new(None));
                let slot2 = Arc::clone(&slot);
                let child = Ctx {
                    sched: Arc::clone(&ctx.sched),
                    tid,
                };
                let os = builder.spawn(move || {
                    sched::install(child.clone());
                    child.wait_first();
                    let r = catch_unwind(AssertUnwindSafe(f));
                    let panic_msg = r.as_ref().err().map(|p| panic_message(p.as_ref()));
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                    child.finish(panic_msg);
                    sched::uninstall();
                })?;
                // Decision point only now that the OS thread exists: the
                // scheduler may pick the child before the spawner resumes.
                ctx.op_point();
                Ok(JoinHandle(Imp::Model {
                    ctx,
                    tid,
                    os: Some(os),
                    slot,
                }))
            }
            None => Ok(JoinHandle(Imp::Std(builder.spawn(f)?))),
        }
    }
}

/// Spawns an (optionally controlled) thread; see [`Builder::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("failed to spawn thread")
}

enum Imp<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        ctx: Ctx,
        tid: usize,
        os: Option<std::thread::JoinHandle<()>>,
        slot: Arc<Mutex<Option<Result<T>>>>,
    },
}

/// Owned permission to join a thread, mirroring `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Imp<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` with
    /// the panic payload if it panicked — model threads that panic also
    /// fail the whole schedule first).
    pub fn join(self) -> Result<T> {
        match self.0 {
            Imp::Std(h) => h.join(),
            Imp::Model {
                ctx,
                tid,
                mut os,
                slot,
            } => {
                let joiner = sched::current()
                    .expect("a model JoinHandle must be joined from inside its model run");
                debug_assert!(
                    Arc::ptr_eq(&joiner.sched, &ctx.sched),
                    "join across model runs"
                );
                joiner.join(tid);
                if let Some(h) = os.take() {
                    let _ = h.join();
                }
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("a finished model thread has stored its result")
            }
        }
    }
}
