//! SplitMix64 — the deterministic stream behind random exploration.
//!
//! Self-contained (this vendor crate depends on nothing) and identical
//! across platforms, which is what makes `replay_seed` exact.

#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The sub-seed of iteration `i` under base `seed`: stable across runs, so
/// a failure found at iteration `i` is replayable from the reported value
/// alone.
pub(crate) fn derive_seed(seed: u64, i: u64) -> u64 {
    SplitMix64::new(seed ^ i.wrapping_mul(0xA076_1D64_78BD_642F)).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(7);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SplitMix64::new(8).next_u64();
        assert_ne!(a[0], c);
        assert_ne!(derive_seed(7, 0), derive_seed(7, 1));
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }
}
