//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access, so this vendored shim
//! implements the subset of the proptest API used by the workspace's
//! property suites:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   header and `pattern in strategy` parameters),
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges,
//!   tuples, and the combinators below,
//! * `prop::collection::vec` (exact or ranged length) and `prop::bool::ANY`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest: generation is plain seeded pseudo-random
//! sampling (no bias toward edge cases) and there is **no shrinking** — a
//! failing case reports its inputs' debug form and case number instead of a
//! minimized counterexample. `prop_assume!` rejections are regenerated (like
//! real proptest) up to 16x the case budget, then the run panics. Runs are
//! fully deterministic: the RNG seed is fixed per test function.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value` (shim of
    /// `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Range sampling is delegated to the vendored `rand` shim so the
    // (deterministic) stream and its overflow handling live in one place.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.sample(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact length or a half-open
    /// range of lengths.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec-length range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec-length range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true` or `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    //! The test runner, its configuration, and failure plumbing.

    use crate::strategy::Strategy;

    /// Deterministic generator used for value generation (wraps the
    /// vendored `rand` shim's [`rand::rngs::StdRng`]).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Builds the generator from a `u64` seed.
        pub fn seed_from_u64(seed: u64) -> Self {
            use rand::SeedableRng as _;
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore as _;
            self.inner.next_u64()
        }

        /// Samples uniformly from a range (delegates to the `rand` shim).
        pub fn sample<T, R: rand::SampleRange<T>>(&mut self, range: R) -> T {
            range.sample_from(&mut self.inner)
        }
    }

    /// Shim of `proptest::test_runner::Config`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// RNG seed for the case stream (fixed → reproducible runs).
        pub rng_seed: u64,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                rng_seed: 0x5EED_CAFE_F00D_BEEF,
            }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// Assertion failure with its message.
        Fail(String),
        /// Case rejected by `prop_assume!`.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Runs a strategy against a test closure `config.cases` times.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Builds a runner for `config`.
        pub fn new(config: ProptestConfig) -> Self {
            let rng = TestRng::seed_from_u64(config.rng_seed);
            TestRunner { config, rng }
        }

        /// Generates and runs `config.cases` accepted cases; panics on the
        /// first failure (no shrinking), reporting the failing inputs'
        /// debug form.
        ///
        /// Cases rejected by `prop_assume!` are regenerated rather than
        /// counted, so assumptions do not silently shrink coverage; if
        /// rejections exceed 16x the case budget the run panics (the
        /// assumption is then too strict for its strategy).
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: Strategy,
            S::Value: core::fmt::Debug + Clone,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let max_rejects = u64::from(self.config.cases) * 16;
            let mut rejects = 0u64;
            let mut case = 0;
            while case < self.config.cases {
                let value = strategy.new_value(&mut self.rng);
                match test(value.clone()) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject(msg)) => {
                        rejects += 1;
                        if rejects > max_rejects {
                            panic!(
                                "proptest: too many rejected cases \
                                 ({rejects} rejects for {case} accepted): {msg}"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => panic!(
                        "proptest: case {case}/{total} failed: {msg}\n    inputs: {value:?}",
                        total = self.config.cases,
                    ),
                }
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            left, right, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            left,
            right,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests (shim of `proptest::proptest!`).
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     /// Doc comment.
///     #[test]
///     fn my_prop(x in 0u64..10, (a, b) in my_strategy()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`] (incremental test-item muncher).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (
        cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let strategy = ($($strat,)+);
            runner.run(&strategy, |($($pat,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u64, usize)> {
        (0u64..100, 1usize..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges respect their bounds.
        #[test]
        fn range_in_bounds(x in 3u32..9, y in 2u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        /// Tuple destructuring patterns work.
        #[test]
        fn tuple_patterns((a, b) in pair_strategy(), flag in prop::bool::ANY) {
            prop_assert!(a < 100, "a = {a}");
            prop_assert!((1..5).contains(&b));
            prop_assume!(flag); // rejected cases must not fail the run
            prop_assert_eq!((a * 2) / 2, a);
        }

        /// Collection and map strategies produce the right shapes.
        #[test]
        fn vec_and_map(v in prop::collection::vec(0usize..10, 2..6), n in prop::collection::vec(1u32..3, 4).prop_map(|w| w.len())) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            prop_assert_eq!(n, 4);
        }
    }

    #[test]
    fn rejections_do_not_consume_cases() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(32));
        let mut executed = 0u32;
        runner.run(&(crate::bool::ANY,), |(flag,)| {
            if !flag {
                return Err(crate::test_runner::TestCaseError::reject("flag"));
            }
            executed += 1;
            Ok(())
        });
        assert_eq!(executed, 32, "every configured case must actually run");
    }

    #[test]
    #[should_panic(expected = "proptest: case 0")]
    fn failures_panic_with_case_info() {
        let mut runner = crate::test_runner::TestRunner::new(ProptestConfig::with_cases(4));
        runner.run(&(0u64..10,), |(_x,)| {
            Err(crate::test_runner::TestCaseError::fail("boom"))
        });
    }
}
